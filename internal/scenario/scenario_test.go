package scenario

import (
	"os"
	"reflect"
	"strings"
	"testing"
	"time"

	"bneck/internal/rate"
)

const handScript = `
# two disjoint router routes between the hosts
router r1
router r2
router r3
router r4
link r1 r2 40mbps 1us
link r2 r4 40mbps 1us
link r1 r3 25mbps 1us
link r3 r4 25mbps 1us
host ha r1
host hb r4

session s1 ha hb
session s2 ha hb

at 0ms  join s1
at 0ms  join s2 demand=8mbps
at 2ms  set-capacity r1 r2 30mbps
at 4ms  fail r1 r2
at 6ms  change s2 demand=unlimited
at 8ms  restore r1 r2
at 10ms leave s2
`

func TestParseHandScript(t *testing.T) {
	sc, err := Parse(handScript)
	if err != nil {
		t.Fatal(err)
	}
	if sc.Topo.Kind != TopoHand {
		t.Fatalf("kind = %v", sc.Topo.Kind)
	}
	if len(sc.Routers) != 4 || len(sc.Hosts) != 2 || len(sc.Links) != 4 || len(sc.Sessions) != 2 {
		t.Fatalf("decls = %d routers, %d hosts, %d links, %d sessions",
			len(sc.Routers), len(sc.Hosts), len(sc.Links), len(sc.Sessions))
	}
	if len(sc.Events) != 7 {
		t.Fatalf("events = %d", len(sc.Events))
	}
	if sc.Events[0].At != 0 || sc.Events[0].Op != OpJoin || sc.Events[0].Session != "s1" {
		t.Fatalf("first event = %+v", sc.Events[0])
	}
	if !sc.Events[1].Demand.Equal(rate.Mbps(8)) {
		t.Fatalf("join demand = %v", sc.Events[1].Demand)
	}
	if sc.Events[2].Op != OpSetCapacity || !sc.Events[2].Capacity.Equal(rate.Mbps(30)) {
		t.Fatalf("set-capacity event = %+v", sc.Events[2])
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name, src, wantSub string
	}{
		{"malformed timestamp", "router r1\nat zzz fail r1 r1", "malformed duration"},
		{"negative duration", "router r1\nrouter r2\nat -3ms fail r1 r2", "negative duration"},
		{"unknown directive", "frobnicate", "unknown directive"},
		{"unknown node in link", "router r1\nlink r1 r9 10mbps 1us", `unknown router "r9"`},
		{"unknown host in session", "router r1\nhost h1 r1\nsession s h1 h9", `unknown host "h9"`},
		{"unknown session in event", "at 0ms join nosuch", `unknown session "nosuch"`},
		{"unknown node in fail", "router r1\nhost h1 r1\nat 0s fail r1 r9", `unknown node "r9"`},
		{"double fail", "router r1\nrouter r2\nlink r1 r2 10mbps 1us\nat 0s fail r1 r2\nat 1s fail r2 r1", "already failed"},
		{"restore of up link", "router r1\nrouter r2\nlink r1 r2 10mbps 1us\nat 0s restore r1 r2", "that is up"},
		{"set-capacity on failed link", "router r1\nrouter r2\nlink r1 r2 10mbps 1us\nat 0s fail r1 r2\nat 1s set-capacity r1 r2 5mbps", "on failed link"},
		{"double join", "router r1\nhost h1 r1\nhost h2 r1\nsession s h1 h2\nat 0s join s\nat 1s join s", "already-joined"},
		{"leave before join", "router r1\nhost h1 r1\nhost h2 r1\nsession s h1 h2\nat 0s leave s", "not joined"},
		{"bad rate", "router r1\nhost h1 r1 10zbps", "malformed rate"},
		{"zero rate", "router r1\nrouter r2\nlink r1 r2 0mbps 1us", "non-positive rate"},
		{"self loop", "router r1\nlink r1 r1 10mbps 1us", "self loop"},
		{"duplicate node", "router r1\nrouter r1", "duplicate node"},
		{"mixed topology", "topology transit-stub small lan\nrouter r1", "cannot mix"},
		{"huge hosts", "topology transit-stub small lan hosts=99999999", "out of range"},
		{"infinite capacity", "router r1\nrouter r2\nlink r1 r2 10mbps 1us\nat 0s set-capacity r1 r2 unlimited", "finite rate"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Parse(c.src)
			if err == nil {
				t.Fatalf("Parse accepted %q", c.src)
			}
			if !strings.Contains(err.Error(), c.wantSub) {
				t.Fatalf("error %q does not mention %q", err, c.wantSub)
			}
		})
	}
}

func TestRunSimHandScript(t *testing.T) {
	sc, err := Parse(handScript)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunSim(sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Epochs) != 6 {
		t.Fatalf("epochs = %d", len(res.Epochs))
	}
	if res.Migrations == 0 {
		t.Fatal("the r1-r2 failure should have migrated sessions")
	}
	last := res.Epochs[len(res.Epochs)-1]
	if last.Active != 1 || last.Stranded != 0 {
		t.Fatalf("final state: active %d stranded %d", last.Active, last.Stranded)
	}
	if res.TotalPackets == 0 {
		t.Fatal("no packets counted")
	}
}

func TestRunLiveHandScript(t *testing.T) {
	sc, err := Parse(handScript)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunLive(sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Epochs) != 6 {
		t.Fatalf("epochs = %d", len(res.Epochs))
	}
	last := res.Epochs[len(res.Epochs)-1]
	if last.Active != 1 || last.Stranded != 0 {
		t.Fatalf("final state: active %d stranded %d", last.Active, last.Stranded)
	}
}

func TestRunSimDeterministic(t *testing.T) {
	sc, err := Parse(handScript)
	if err != nil {
		t.Fatal(err)
	}
	a, err := RunSim(sc)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunSim(sc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("scenario runs differ:\n%+v\n%+v", a, b)
	}
}

// TestFailoverScenarioBothTransports is the acceptance scenario: the checked
// in failover script (TransitStub topology, 3 link failures + 3 restores +
// 2 capacity changes + churn) must validate against the water-filling oracle
// at every quiescent epoch on both transports.
func TestFailoverScenarioBothTransports(t *testing.T) {
	src, err := os.ReadFile("../../examples/scenarios/failover.bneck")
	if err != nil {
		t.Fatal(err)
	}
	sc, err := Parse(string(src))
	if err != nil {
		t.Fatal(err)
	}
	fails, restores, capChanges := 0, 0, 0
	for _, ev := range sc.Events {
		switch ev.Op {
		case OpFail:
			fails++
		case OpRestore:
			restores++
		case OpSetCapacity:
			capChanges++
		}
	}
	if fails < 3 || restores < 3 || capChanges < 2 {
		t.Fatalf("scenario too tame: %d fails, %d restores, %d capacity changes", fails, restores, capChanges)
	}

	simRes, err := RunSim(sc)
	if err != nil {
		t.Fatalf("sim transport: %v", err)
	}
	if len(simRes.Epochs) == 0 || simRes.TotalPackets == 0 {
		t.Fatal("sim run produced nothing")
	}
	final := simRes.Epochs[len(simRes.Epochs)-1]
	if final.Active == 0 {
		t.Fatal("no active sessions at the end")
	}

	liveRes, err := RunLive(sc)
	if err != nil {
		t.Fatalf("live transport: %v", err)
	}
	liveFinal := liveRes.Epochs[len(liveRes.Epochs)-1]
	if liveFinal.Active != final.Active {
		t.Fatalf("transports disagree on surviving sessions: sim %d, live %d", final.Active, liveFinal.Active)
	}
}

func TestEpochOverrunAppliesImmediately(t *testing.T) {
	// Two epochs 1ns apart: convergence of the first overruns the second's
	// timestamp; the runner must apply it at the later time instead of
	// scheduling into the past.
	src := `
router r1
host h1 r1
host h2 r1
session s1 h1 h2
session s2 h1 h2
at 0s   join s1
at 1ns  join s2
`
	sc, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunSim(sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Epochs) != 2 {
		t.Fatalf("epochs = %d", len(res.Epochs))
	}
	if res.Epochs[1].Applied < res.Epochs[0].Quiescence {
		t.Fatalf("second epoch applied at %v, before first quiescence %v",
			res.Epochs[1].Applied, res.Epochs[0].Quiescence)
	}
	if res.Epochs[1].Active != 2 {
		t.Fatalf("active = %d", res.Epochs[1].Active)
	}
}

func TestParseDurationsAndRates(t *testing.T) {
	if d, err := parseDuration("1500us"); err != nil || d != 1500*time.Microsecond {
		t.Fatalf("parseDuration = %v, %v", d, err)
	}
	if r, err := parseRate("2gbps"); err != nil || !r.Equal(rate.FromInt64(2_000_000_000)) {
		t.Fatalf("parseRate gbps = %v, %v", r, err)
	}
	if r, err := parseRate("512"); err != nil || !r.Equal(rate.FromInt64(512)) {
		t.Fatalf("parseRate bare = %v, %v", r, err)
	}
	if r, err := parseRate("UNLIMITED"); err != nil || !r.IsInf() {
		t.Fatalf("parseRate unlimited = %v, %v", r, err)
	}
}

// --- expect rate ---------------------------------------------------------

const expectScript = `
router r1
router r2
link r1 r2 60mbps 1us
host h1 r1
host h2 r2
host h3 r1
host h4 r2
session s1 h1 h2
session s2 h3 h4
at 0ms join s1
at 0ms join s2
at 1ms expect rate s1 30mbps
at 1ms expect rate h3 30mbps
at 2ms leave s2
at 3ms expect rate s1 60mbps
at 3ms expect rate h3 0bps
`

func TestExpectRateParses(t *testing.T) {
	sc, err := Parse(expectScript)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, ev := range sc.Events {
		if ev.Op == OpExpectRate {
			n++
		}
	}
	if n != 4 {
		t.Fatalf("parsed %d expect events, want 4", n)
	}
}

func TestExpectRateParseErrors(t *testing.T) {
	for _, bad := range []string{
		"at 1ms expect rate",
		"at 1ms expect rate s1",
		"at 1ms expect weight s1 3mbps",
		"at 1ms expect rate s1 unlimited",
	} {
		src := "router r1\nrouter r2\nlink r1 r2 10mbps 1us\nhost h1 r1\nhost h2 r2\nsession s1 h1 h2\nat 0ms join s1\n" + bad + "\n"
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse accepted %q", bad)
		}
	}
	// Unknown name on a hand-built topology fails at parse time.
	src := "router r1\nrouter r2\nlink r1 r2 10mbps 1us\nhost h1 r1\nhost h2 r2\nsession s1 h1 h2\nat 0ms join s1\nat 1ms expect rate nosuch 10mbps\n"
	if _, err := Parse(src); err == nil {
		t.Error("Parse accepted an expect for an unknown name")
	}
}

func TestExpectRateSimPassAndFail(t *testing.T) {
	sc, err := Parse(expectScript)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunSim(sc); err != nil {
		t.Fatalf("correct expectations failed: %v", err)
	}
	wrong := strings.Replace(expectScript, "expect rate s1 30mbps", "expect rate s1 31mbps", 1)
	sc, err = Parse(wrong)
	if err != nil {
		t.Fatal(err)
	}
	_, err = RunSim(sc)
	if err == nil || !strings.Contains(err.Error(), "expect rate") {
		t.Fatalf("wrong expectation did not fail usefully: %v", err)
	}
}

func TestExpectRateLive(t *testing.T) {
	sc, err := Parse(expectScript)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunLive(sc); err != nil {
		t.Fatalf("live expectations failed: %v", err)
	}
}
