// Package scenario parses and executes declarative B-Neck event scripts:
// one timeline mixing session churn (join/leave/change) with topology events
// (link failures, restorations, capacity changes) over a hand-built or
// generated transit-stub topology. Scripts run on the deterministic
// simulator or on the live actor runtime, validating against the
// water-filling oracle at every quiescent epoch.
//
// Script grammar (line-oriented, '#' starts a comment):
//
//	# optional path policy (default pinned); reoptimize migrates sessions
//	# back onto shorter paths after restores — see internal/policy
//	policy reoptimize stretch=1.5 min-gain=2 capacity-gain=2
//
//	# topology: either one generated...
//	topology transit-stub small lan seed=42 hosts=24
//	# ...an internet-ladder rung (paper ≈40, metro ≈1k, global ≈10k routers;
//	# hosts are named h0, h1, ...):
//	topology internet paper seed=7 hosts=8
//	# ...or hand-built from declarations:
//	router r1
//	router r2
//	host h1 r1                  # attach to router; default 100mbps, 1us
//	host h2 r2 50mbps 2us
//	link r1 r2 200mbps 1ms
//
//	session s1 h1 h2
//
//	at 0ms   join s1                 # demand defaults to unlimited
//	at 0ms   join s2 demand=40mbps
//	at 2ms   change s1 demand=10mbps
//	at 3ms   leave s1
//	at 4ms   set-capacity r1 r2 50mbps
//	at 5ms   fail r1 r2
//	at 6ms   restore r1 r2
//	at 7ms   expect rate s1 25mbps       # golden assertion after the epoch
//	at 7ms   expect rate h1 25mbps       # ...or the host's total source rate
//	at 7ms   expect migrated 2           # failure-forced reroutes so far
//	at 7ms   expect stranded 0           # sessions currently parked
//	at 7ms   expect reoptimized 1        # policy-driven reroutes so far
//
//	repeat 50 {                          # long-soak loop: the block repeats,
//	  at 1ms  fail r1 r2                 # each iteration shifted by the
//	  at 2ms  restore r1 r2              # block's largest timestamp (2ms)
//	}
//
// Topology events name a duplex link by its two endpoints and apply to both
// directions. Generated transit-stub topologies use the generator's
// deterministic node names (transit routers t<d>.<i>, stub routers
// s<d>.<i>, hosts h<n>).
//
// Events sharing a timestamp form one epoch: the runner applies the epoch,
// drives the network to quiescence, and validates the allocation before the
// next epoch. `expect` events assert, after their epoch has quiesced and
// validated, that the network is in a given state — `expect rate` that a
// session holds exactly the given rate (or, for a host, that its active
// sessions' granted rates sum to it), `expect migrated` that topology events
// have rerouted exactly n sessions so far, `expect stranded` that exactly n
// sessions are currently parked without a path — turning scripts into golden
// regression tests on both transports. Parse additionally replays the
// timeline statically (repeat blocks fully expanded) and rejects scripts
// that fail an already-failed link, restore an up link, reconfigure a failed
// link's capacity, or churn a session inconsistently.
package scenario

import (
	"bufio"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"time"

	"bneck/internal/policy"
	"bneck/internal/rate"
	"bneck/internal/topology"
)

// Op is a timeline event kind.
type Op int

const (
	OpJoin Op = iota + 1
	OpLeave
	OpChange
	OpFail
	OpRestore
	OpSetCapacity
	OpExpectRate
	OpExpectMigrated
	OpExpectStranded
	OpExpectReoptimized
)

func (o Op) String() string {
	switch o {
	case OpJoin:
		return "join"
	case OpLeave:
		return "leave"
	case OpChange:
		return "change"
	case OpFail:
		return "fail"
	case OpRestore:
		return "restore"
	case OpSetCapacity:
		return "set-capacity"
	case OpExpectRate:
		return "expect rate"
	case OpExpectMigrated:
		return "expect migrated"
	case OpExpectStranded:
		return "expect stranded"
	case OpExpectReoptimized:
		return "expect reoptimized"
	default:
		return "unknown"
	}
}

// Event is one timeline entry. Session ops use Session (+Demand for
// join/change); topology ops use the A–B endpoint names (+Capacity for
// set-capacity). An expect-rate assertion names a session or a host in
// Session and carries the expected rate in Demand; expect-migrated,
// expect-stranded and expect-reoptimized assertions carry their expected
// count in Count.
type Event struct {
	At       time.Duration
	Op       Op
	Session  string
	A, B     string
	Demand   rate.Rate
	Capacity rate.Rate
	Count    int
	Line     int
}

// TopoKind distinguishes generated from hand-built topologies.
type TopoKind int

const (
	TopoHand TopoKind = iota + 1
	TopoTransitStub
	TopoInternet
)

// TopoSpec describes the script's topology source. Size/Scen parameterize a
// transit-stub generation, Inet an internet-ladder one.
type TopoSpec struct {
	Kind  TopoKind
	Size  topology.Params
	Scen  topology.Scenario
	Inet  topology.InternetParams
	Seed  int64
	Hosts int
}

// RouterDecl, HostDecl, LinkDecl and SessionDecl are the hand-built
// declarations, in script order.
type RouterDecl struct {
	Name string
	Line int
}

type HostDecl struct {
	Name     string
	Router   string
	Capacity rate.Rate
	Delay    time.Duration
	Line     int
}

type LinkDecl struct {
	A, B     string
	Capacity rate.Rate
	Delay    time.Duration
	Line     int
}

type SessionDecl struct {
	Name     string
	Src, Dst string
	Line     int
}

// Script is a parsed scenario.
type Script struct {
	Topo     TopoSpec
	Routers  []RouterDecl
	Hosts    []HostDecl
	Links    []LinkDecl
	Sessions []SessionDecl
	// Policy is the path re-optimization policy the runners install on the
	// transport (the `policy` directive; zero value = pinned).
	Policy policy.Config
	// Events are sorted by time; ties keep script order.
	Events []Event
}

// maxScriptHosts bounds transit-stub host counts so a typo cannot demand a
// gigantic generation.
const maxScriptHosts = 100_000

// maxScriptEvents bounds the expanded timeline (repeat blocks multiply
// events) so a typo cannot demand a gigantic run.
const maxScriptEvents = 100_000

// repeatBlock collects the events of one `repeat <n> { ... }` block while
// it is being parsed.
type repeatBlock struct {
	n      int
	line   int
	events []Event
}

// Parse reads a scenario script and statically checks it. Every error names
// the offending line.
func Parse(src string) (*Script, error) {
	sc := &Script{}
	sessions := make(map[string]int)
	routers := make(map[string]int)
	hosts := make(map[string]int)
	sawTopology := false
	sawPolicy := false
	var rep *repeatBlock

	lineNo := 0
	scanner := bufio.NewScanner(strings.NewReader(src))
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	for scanner.Scan() {
		lineNo++
		line := scanner.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		f := strings.Fields(line)
		if len(f) == 0 {
			continue
		}
		fail := func(format string, args ...any) error {
			return fmt.Errorf("scenario: line %d: %s", lineNo, fmt.Sprintf(format, args...))
		}
		if rep != nil && f[0] != "at" && f[0] != "}" {
			return nil, fail("only `at` events may appear inside a repeat block")
		}
		switch f[0] {
		case "repeat":
			if rep != nil {
				return nil, fail("repeat blocks cannot nest")
			}
			if len(f) != 3 || f[2] != "{" {
				return nil, fail("usage: repeat <n> {")
			}
			n, err := strconv.Atoi(f[1])
			if err != nil || n < 1 {
				return nil, fail("repeat count %q must be a positive integer", f[1])
			}
			rep = &repeatBlock{n: n, line: lineNo}
			continue
		case "}":
			if rep == nil {
				return nil, fail("`}` without an open repeat block")
			}
			if len(f) != 1 {
				return nil, fail("`}` must stand alone")
			}
			expanded, err := rep.expand()
			if err != nil {
				return nil, fmt.Errorf("scenario: line %d: %w", rep.line, err)
			}
			if len(sc.Events)+len(expanded) > maxScriptEvents {
				return nil, fail("repeat expands past %d events", maxScriptEvents)
			}
			sc.Events = append(sc.Events, expanded...)
			rep = nil
			continue
		}
		switch f[0] {
		case "topology":
			if sawTopology {
				return nil, fail("duplicate topology line")
			}
			sawTopology = true
			if err := parseTopology(sc, f[1:]); err != nil {
				return nil, fail("%v", err)
			}
		case "policy":
			if sawPolicy {
				return nil, fail("duplicate policy line")
			}
			sawPolicy = true
			if err := parsePolicy(sc, f[1:]); err != nil {
				return nil, fail("%v", err)
			}
		case "router":
			if len(f) != 2 {
				return nil, fail("usage: router <name>")
			}
			if err := declareName(routers, hosts, sessions, f[1]); err != nil {
				return nil, fail("%v", err)
			}
			routers[f[1]] = lineNo
			sc.Routers = append(sc.Routers, RouterDecl{Name: f[1], Line: lineNo})
		case "host":
			if len(f) < 3 || len(f) > 5 {
				return nil, fail("usage: host <name> <router> [capacity [delay]]")
			}
			if err := declareName(routers, hosts, sessions, f[1]); err != nil {
				return nil, fail("%v", err)
			}
			if _, ok := routers[f[2]]; !ok {
				return nil, fail("unknown router %q", f[2])
			}
			h := HostDecl{Name: f[1], Router: f[2], Capacity: rate.Mbps(100), Delay: time.Microsecond, Line: lineNo}
			if len(f) >= 4 {
				c, err := parseRate(f[3])
				if err != nil {
					return nil, fail("%v", err)
				}
				h.Capacity = c
			}
			if len(f) == 5 {
				d, err := parseDuration(f[4])
				if err != nil {
					return nil, fail("%v", err)
				}
				h.Delay = d
			}
			hosts[f[1]] = lineNo
			sc.Hosts = append(sc.Hosts, h)
		case "link":
			if len(f) != 5 {
				return nil, fail("usage: link <a> <b> <capacity> <delay>")
			}
			for _, n := range f[1:3] {
				if _, ok := routers[n]; !ok {
					return nil, fail("unknown router %q (hosts attach via the host line)", n)
				}
			}
			if f[1] == f[2] {
				return nil, fail("self loop on %q", f[1])
			}
			c, err := parseRate(f[3])
			if err != nil {
				return nil, fail("%v", err)
			}
			d, err := parseDuration(f[4])
			if err != nil {
				return nil, fail("%v", err)
			}
			sc.Links = append(sc.Links, LinkDecl{A: f[1], B: f[2], Capacity: c, Delay: d, Line: lineNo})
		case "session":
			if len(f) != 4 {
				return nil, fail("usage: session <name> <srcHost> <dstHost>")
			}
			if _, dup := sessions[f[1]]; dup {
				return nil, fail("duplicate session %q", f[1])
			}
			if _, clash := routers[f[1]]; clash {
				return nil, fail("session name %q clashes with a node", f[1])
			}
			if _, clash := hosts[f[1]]; clash {
				return nil, fail("session name %q clashes with a node", f[1])
			}
			if f[2] == f[3] {
				return nil, fail("session endpoints coincide (%q)", f[2])
			}
			sessions[f[1]] = lineNo
			sc.Sessions = append(sc.Sessions, SessionDecl{Name: f[1], Src: f[2], Dst: f[3], Line: lineNo})
		case "at":
			ev, err := parseEvent(f[1:], lineNo)
			if err != nil {
				return nil, fail("%v", err)
			}
			if rep != nil {
				rep.events = append(rep.events, ev)
				continue
			}
			if len(sc.Events) >= maxScriptEvents {
				return nil, fail("script exceeds %d events", maxScriptEvents)
			}
			sc.Events = append(sc.Events, ev)
		default:
			return nil, fail("unknown directive %q", f[0])
		}
	}
	if err := scanner.Err(); err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	if rep != nil {
		return nil, fmt.Errorf("scenario: line %d: repeat block never closed", rep.line)
	}

	if sc.Topo.Kind == 0 {
		sc.Topo.Kind = TopoHand
	}
	if sc.Topo.Kind != TopoHand && (len(sc.Routers) > 0 || len(sc.Hosts) > 0 || len(sc.Links) > 0) {
		return nil, fmt.Errorf("scenario: hand-built declarations cannot mix with a generated topology")
	}
	if sc.Topo.Kind == TopoHand {
		// Hand-built scripts can validate names at parse time.
		for _, s := range sc.Sessions {
			for _, h := range []string{s.Src, s.Dst} {
				if _, ok := hosts[h]; !ok {
					return nil, fmt.Errorf("scenario: line %d: unknown host %q", s.Line, h)
				}
			}
		}
		for _, ev := range sc.Events {
			switch ev.Op {
			case OpJoin, OpLeave, OpChange, OpExpectRate, OpExpectMigrated, OpExpectStranded, OpExpectReoptimized:
				continue
			}
			for _, n := range []string{ev.A, ev.B} {
				if _, okR := routers[n]; okR {
					continue
				}
				if _, okH := hosts[n]; okH {
					continue
				}
				return nil, fmt.Errorf("scenario: line %d: unknown node %q", ev.Line, n)
			}
		}
	}
	for _, ev := range sc.Events {
		switch ev.Op {
		case OpJoin, OpLeave, OpChange:
			if _, ok := sessions[ev.Session]; !ok {
				return nil, fmt.Errorf("scenario: line %d: unknown session %q", ev.Line, ev.Session)
			}
		case OpExpectRate:
			if _, ok := sessions[ev.Session]; ok {
				break
			}
			if _, ok := hosts[ev.Session]; ok {
				break
			}
			if sc.Topo.Kind == TopoHand {
				return nil, fmt.Errorf("scenario: line %d: expect rate names unknown session or host %q", ev.Line, ev.Session)
			}
			// Generated-topology host names resolve at build time.
		}
	}

	sort.SliceStable(sc.Events, func(i, j int) bool { return sc.Events[i].At < sc.Events[j].At })
	if err := sc.checkTimeline(); err != nil {
		return nil, err
	}
	return sc, nil
}

// Recheck re-sorts the timeline and re-runs the static consistency checks on
// a script whose event timestamps were edited after Parse — the churn-timing
// fuzzer's validity gate: a perturbation that double-fails a link or leaves
// before joining is rejected exactly like a hand-written script would be.
func (sc *Script) Recheck() error {
	sort.SliceStable(sc.Events, func(i, j int) bool { return sc.Events[i].At < sc.Events[j].At })
	return sc.checkTimeline()
}

// checkTimeline replays the sorted events statically: session churn must be
// consistent (no double join, no leave before join) and topology events must
// respect link state (no failing a failed link, no restoring an up link, no
// reconfiguring a failed link).
func (sc *Script) checkTimeline() error {
	joined := make(map[string]bool)
	downPairs := make(map[[2]string]bool)
	key := func(a, b string) [2]string {
		if a > b {
			a, b = b, a
		}
		return [2]string{a, b}
	}
	for _, ev := range sc.Events {
		switch ev.Op {
		case OpJoin:
			if joined[ev.Session] {
				return fmt.Errorf("scenario: line %d: join of already-joined session %q", ev.Line, ev.Session)
			}
			joined[ev.Session] = true
		case OpLeave:
			if !joined[ev.Session] {
				return fmt.Errorf("scenario: line %d: leave of session %q that is not joined", ev.Line, ev.Session)
			}
			joined[ev.Session] = false
		case OpChange:
			if !joined[ev.Session] {
				return fmt.Errorf("scenario: line %d: change of session %q that is not joined", ev.Line, ev.Session)
			}
		case OpFail:
			k := key(ev.A, ev.B)
			if downPairs[k] {
				return fmt.Errorf("scenario: line %d: link %s-%s is already failed", ev.Line, ev.A, ev.B)
			}
			downPairs[k] = true
		case OpRestore:
			k := key(ev.A, ev.B)
			if !downPairs[k] {
				return fmt.Errorf("scenario: line %d: restore of link %s-%s that is up", ev.Line, ev.A, ev.B)
			}
			downPairs[k] = false
		case OpSetCapacity:
			if downPairs[key(ev.A, ev.B)] {
				return fmt.Errorf("scenario: line %d: set-capacity on failed link %s-%s", ev.Line, ev.A, ev.B)
			}
		}
	}
	return nil
}

// expand lays the block's events out n times: timestamps inside the block
// are relative to each iteration's start, and iterations are spaced by the
// block's largest timestamp (its span). A block `repeat 3 { at 5ms fail a b;
// at 10ms restore a b }` therefore fires at 5,10, 15,20, 25,30 ms — the
// shape of a long churn soak. The static timeline checker then replays the
// expanded events, so a block whose iterations would double-fail a link is
// rejected like any hand-written timeline.
func (r *repeatBlock) expand() ([]Event, error) {
	if len(r.events) == 0 {
		return nil, fmt.Errorf("repeat block is empty")
	}
	// Division, not multiplication: a huge count must not overflow the
	// guard itself (this parser sees untrusted input).
	if r.n > maxScriptEvents/len(r.events) {
		return nil, fmt.Errorf("repeat of %d × %d events expands past %d", r.n, len(r.events), maxScriptEvents)
	}
	span := time.Duration(0)
	for _, ev := range r.events {
		if ev.At > span {
			span = ev.At
		}
	}
	if span <= 0 {
		return nil, fmt.Errorf("repeat block needs a positive time span (its largest `at` offset)")
	}
	if span > time.Duration(math.MaxInt64)/time.Duration(r.n) {
		return nil, fmt.Errorf("repeat span %v overflows over %d iterations", span, r.n)
	}
	out := make([]Event, 0, r.n*len(r.events))
	for i := 0; i < r.n; i++ {
		off := time.Duration(i) * span
		for _, ev := range r.events {
			ev.At += off
			out = append(out, ev)
		}
	}
	return out, nil
}

func declareName(routers, hosts, sessions map[string]int, name string) error {
	if _, dup := routers[name]; dup {
		return fmt.Errorf("duplicate node %q", name)
	}
	if _, dup := hosts[name]; dup {
		return fmt.Errorf("duplicate node %q", name)
	}
	if _, clash := sessions[name]; clash {
		return fmt.Errorf("node name %q clashes with a session", name)
	}
	return nil
}

func parseTopology(sc *Script, f []string) error {
	if len(f) < 1 {
		return fmt.Errorf("usage: topology transit-stub <size> <scenario> [seed=N] [hosts=N]")
	}
	switch f[0] {
	case "transit-stub":
		if len(f) < 3 {
			return fmt.Errorf("usage: topology transit-stub <small|medium|big> <lan|wan> [seed=N] [hosts=N]")
		}
		spec := TopoSpec{Kind: TopoTransitStub, Seed: 1}
		switch f[1] {
		case "small":
			spec.Size = topology.Small
		case "medium":
			spec.Size = topology.Medium
		case "big":
			spec.Size = topology.Big
		default:
			return fmt.Errorf("unknown size %q (small, medium, big)", f[1])
		}
		switch f[2] {
		case "lan":
			spec.Scen = topology.LAN
		case "wan":
			spec.Scen = topology.WAN
		default:
			return fmt.Errorf("unknown scenario %q (lan, wan)", f[2])
		}
		for _, opt := range f[3:] {
			k, v, ok := strings.Cut(opt, "=")
			if !ok {
				return fmt.Errorf("malformed option %q (want key=value)", opt)
			}
			n, err := strconv.ParseInt(v, 10, 64)
			if err != nil {
				return fmt.Errorf("option %s: %v", k, err)
			}
			switch k {
			case "seed":
				spec.Seed = n
			case "hosts":
				if n < 0 || n > maxScriptHosts {
					return fmt.Errorf("hosts=%d out of range [0, %d]", n, maxScriptHosts)
				}
				spec.Hosts = int(n)
			default:
				return fmt.Errorf("unknown option %q", k)
			}
		}
		sc.Topo = spec
		return nil
	case "internet":
		if len(f) < 2 {
			return fmt.Errorf("usage: topology internet <paper|metro|global> [seed=N] [hosts=N]")
		}
		spec := TopoSpec{Kind: TopoInternet, Seed: 1}
		switch f[1] {
		case "paper":
			spec.Inet = topology.InternetPaper
		case "metro":
			spec.Inet = topology.InternetMetro
		case "global":
			spec.Inet = topology.InternetGlobal
		default:
			return fmt.Errorf("unknown internet rung %q (paper, metro, global)", f[1])
		}
		for _, opt := range f[2:] {
			k, v, ok := strings.Cut(opt, "=")
			if !ok {
				return fmt.Errorf("malformed option %q (want key=value)", opt)
			}
			n, err := strconv.ParseInt(v, 10, 64)
			if err != nil {
				return fmt.Errorf("option %s: %v", k, err)
			}
			switch k {
			case "seed":
				spec.Seed = n
			case "hosts":
				if n < 0 || n > maxScriptHosts {
					return fmt.Errorf("hosts=%d out of range [0, %d]", n, maxScriptHosts)
				}
				spec.Hosts = int(n)
			default:
				return fmt.Errorf("unknown option %q", k)
			}
		}
		sc.Topo = spec
		return nil
	default:
		return fmt.Errorf("unknown topology kind %q (transit-stub, internet, or hand-built declarations)", f[0])
	}
}

// parsePolicy reads a `policy <pinned|reoptimize> [stretch=F] [min-gain=N]
// [capacity-gain=F]` directive.
func parsePolicy(sc *Script, f []string) error {
	if len(f) < 1 {
		return fmt.Errorf("usage: policy <pinned|reoptimize> [stretch=F] [min-gain=N] [capacity-gain=F]")
	}
	kind, ok := policy.Parse(f[0])
	if !ok {
		return fmt.Errorf("unknown policy %q (pinned, reoptimize)", f[0])
	}
	cfg := policy.Config{Kind: kind}
	for _, opt := range f[1:] {
		k, v, ok := strings.Cut(opt, "=")
		if !ok {
			return fmt.Errorf("malformed option %q (want key=value)", opt)
		}
		switch k {
		case "stretch", "capacity-gain":
			x, err := strconv.ParseFloat(v, 64)
			if err != nil || x < 1 {
				return fmt.Errorf("option %s=%q must be a number ≥ 1", k, v)
			}
			if k == "stretch" {
				cfg.Stretch = x
			} else {
				cfg.CapacityGain = x
			}
		case "min-gain":
			n, err := strconv.Atoi(v)
			if err != nil || n < 1 {
				return fmt.Errorf("option min-gain=%q must be a positive integer", v)
			}
			cfg.MinGain = n
		default:
			return fmt.Errorf("unknown option %q", k)
		}
	}
	if kind == policy.Pinned && (cfg.Stretch != 0 || cfg.MinGain != 0 || cfg.CapacityGain != 0) {
		return fmt.Errorf("policy pinned takes no options")
	}
	sc.Policy = cfg
	return nil
}

func parseEvent(f []string, line int) (Event, error) {
	if len(f) < 2 {
		return Event{}, fmt.Errorf("usage: at <time> <op> ...")
	}
	at, err := parseDuration(f[0])
	if err != nil {
		return Event{}, err
	}
	ev := Event{At: at, Line: line}
	op, args := f[1], f[2:]
	switch op {
	case "join":
		ev.Op = OpJoin
		ev.Demand = rate.Inf
		if len(args) < 1 || len(args) > 2 {
			return Event{}, fmt.Errorf("usage: at <time> join <session> [demand=<rate>]")
		}
		ev.Session = args[0]
		if len(args) == 2 {
			d, err := parseDemandOpt(args[1])
			if err != nil {
				return Event{}, err
			}
			ev.Demand = d
		}
	case "change":
		ev.Op = OpChange
		if len(args) != 2 {
			return Event{}, fmt.Errorf("usage: at <time> change <session> demand=<rate>")
		}
		ev.Session = args[0]
		d, err := parseDemandOpt(args[1])
		if err != nil {
			return Event{}, err
		}
		ev.Demand = d
	case "leave":
		ev.Op = OpLeave
		if len(args) != 1 {
			return Event{}, fmt.Errorf("usage: at <time> leave <session>")
		}
		ev.Session = args[0]
	case "fail", "restore":
		if op == "fail" {
			ev.Op = OpFail
		} else {
			ev.Op = OpRestore
		}
		if len(args) != 2 {
			return Event{}, fmt.Errorf("usage: at <time> %s <nodeA> <nodeB>", op)
		}
		ev.A, ev.B = args[0], args[1]
		if ev.A == ev.B {
			return Event{}, fmt.Errorf("%s endpoints coincide (%q)", op, ev.A)
		}
	case "expect":
		switch {
		case len(args) == 3 && args[0] == "rate":
			ev.Op = OpExpectRate
			ev.Session = args[1]
			r, err := parseExpectedRate(args[2])
			if err != nil {
				return Event{}, err
			}
			ev.Demand = r
		case len(args) == 2 && (args[0] == "migrated" || args[0] == "stranded" || args[0] == "reoptimized"):
			switch args[0] {
			case "migrated":
				ev.Op = OpExpectMigrated
			case "stranded":
				ev.Op = OpExpectStranded
			case "reoptimized":
				ev.Op = OpExpectReoptimized
			}
			n, err := strconv.Atoi(args[1])
			if err != nil || n < 0 {
				return Event{}, fmt.Errorf("expect %s count %q must be a non-negative integer", args[0], args[1])
			}
			ev.Count = n
		default:
			return Event{}, fmt.Errorf("usage: at <time> expect rate <session|host> <rate> | expect migrated <n> | expect stranded <n> | expect reoptimized <n>")
		}
	case "set-capacity":
		ev.Op = OpSetCapacity
		if len(args) != 3 {
			return Event{}, fmt.Errorf("usage: at <time> set-capacity <nodeA> <nodeB> <rate>")
		}
		ev.A, ev.B = args[0], args[1]
		if ev.A == ev.B {
			return Event{}, fmt.Errorf("set-capacity endpoints coincide (%q)", ev.A)
		}
		c, err := parseRate(args[2])
		if err != nil {
			return Event{}, err
		}
		if c.IsInf() {
			return Event{}, fmt.Errorf("set-capacity requires a finite rate")
		}
		ev.Capacity = c
	default:
		return Event{}, fmt.Errorf("unknown event %q", op)
	}
	if at < 0 {
		return Event{}, fmt.Errorf("negative timestamp %v", at)
	}
	return ev, nil
}

func parseDemandOpt(s string) (rate.Rate, error) {
	k, v, ok := strings.Cut(s, "=")
	if !ok || k != "demand" {
		return rate.Zero, fmt.Errorf("malformed option %q (want demand=<rate>)", s)
	}
	return parseRate(v)
}

// parseExpectedRate is parseRate for expect-rate assertions: zero is legal
// (asserting a departed or stranded population carries nothing), infinity is
// not (no granted rate is ever unlimited).
func parseExpectedRate(s string) (rate.Rate, error) {
	for _, zero := range []string{"0", "0bps", "0kbps", "0mbps", "0gbps"} {
		if strings.ToLower(s) == zero {
			return rate.Zero, nil
		}
	}
	r, err := parseRate(s)
	if err != nil {
		return rate.Zero, err
	}
	if r.IsInf() {
		return rate.Zero, fmt.Errorf("expect rate requires a finite rate")
	}
	return r, nil
}

// parseRate accepts "unlimited"/"inf" or an integer with a bps/kbps/mbps/gbps
// suffix (a bare integer is bits per second).
func parseRate(s string) (rate.Rate, error) {
	low := strings.ToLower(s)
	if low == "unlimited" || low == "inf" {
		return rate.Inf, nil
	}
	mult := int64(1)
	num := low
	for _, u := range []struct {
		suffix string
		mult   int64
	}{{"gbps", 1e9}, {"mbps", 1e6}, {"kbps", 1e3}, {"bps", 1}} {
		if strings.HasSuffix(low, u.suffix) {
			mult = u.mult
			num = strings.TrimSuffix(low, u.suffix)
			break
		}
	}
	v, err := strconv.ParseInt(num, 10, 64)
	if err != nil {
		return rate.Zero, fmt.Errorf("malformed rate %q: %v", s, err)
	}
	if v <= 0 {
		return rate.Zero, fmt.Errorf("non-positive rate %q", s)
	}
	if v > (1<<62)/mult {
		return rate.Zero, fmt.Errorf("rate %q overflows", s)
	}
	return rate.FromInt64(v * mult), nil
}

// parseDuration wraps time.ParseDuration, rejecting negatives and bare
// numbers.
func parseDuration(s string) (time.Duration, error) {
	d, err := time.ParseDuration(s)
	if err != nil {
		return 0, fmt.Errorf("malformed duration %q", s)
	}
	if d < 0 {
		return 0, fmt.Errorf("negative duration %q", s)
	}
	return d, nil
}
