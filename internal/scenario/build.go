package scenario

import (
	"fmt"
	"time"

	"bneck/internal/graph"
	"bneck/internal/topology"
)

// world is a script instantiated onto a concrete graph: resolved node names,
// session endpoints, per-event duplex link IDs, and the timeline grouped
// into epochs. Each run builds a fresh world, because runs mutate the graph.
type world struct {
	sc     *Script
	g      *graph.Graph
	topo   *topology.Network // nil for hand-built
	nodes  map[string]graph.NodeID
	epochs []epoch
}

type epoch struct {
	at     time.Duration
	events []resolvedEvent
}

type resolvedEvent struct {
	Event
	// sessionIdx indexes Script.Sessions for session ops (and expect-rate
	// assertions naming a session).
	sessionIdx int
	// ab/ba are the duplex pair for topology ops.
	ab, ba graph.LinkID
	// host is the asserted host for expect-rate events naming a host.
	host graph.NodeID
}

// build instantiates the script's topology and resolves every name.
func build(sc *Script) (*world, error) {
	w := &world{sc: sc, nodes: make(map[string]graph.NodeID)}
	switch sc.Topo.Kind {
	case TopoHand:
		g := graph.New()
		for _, r := range sc.Routers {
			w.nodes[r.Name] = g.AddRouter(r.Name)
		}
		for _, l := range sc.Links {
			g.Connect(w.nodes[l.A], w.nodes[l.B], l.Capacity, l.Delay)
		}
		for _, h := range sc.Hosts {
			id := g.AddHost(h.Name)
			g.Connect(id, w.nodes[h.Router], h.Capacity, h.Delay)
			w.nodes[h.Name] = id
		}
		if err := g.Validate(); err != nil {
			return nil, fmt.Errorf("scenario: invalid topology: %w", err)
		}
		w.g = g
	case TopoTransitStub:
		topo, err := topology.Generate(sc.Topo.Size, sc.Topo.Scen, sc.Topo.Seed)
		if err != nil {
			return nil, err
		}
		topo.AddHosts(sc.Topo.Hosts)
		w.topo = topo
		w.g = topo.Graph
		for i := 0; i < w.g.NumNodes(); i++ {
			n := w.g.Node(graph.NodeID(i))
			w.nodes[n.Name] = n.ID
		}
	case TopoInternet:
		inet, err := topology.GenerateInternet(sc.Topo.Inet, sc.Topo.Seed)
		if err != nil {
			return nil, err
		}
		inet.AddHosts(sc.Topo.Hosts)
		w.g = inet.Graph
		for i := 0; i < w.g.NumNodes(); i++ {
			n := w.g.Node(graph.NodeID(i))
			w.nodes[n.Name] = n.ID
		}
	default:
		return nil, fmt.Errorf("scenario: no topology")
	}

	sessionIdx := make(map[string]int, len(sc.Sessions))
	for i, s := range sc.Sessions {
		for _, h := range []string{s.Src, s.Dst} {
			id, ok := w.nodes[h]
			if !ok {
				return nil, fmt.Errorf("scenario: line %d: unknown host %q", s.Line, h)
			}
			if w.g.Node(id).Kind != graph.Host {
				return nil, fmt.Errorf("scenario: line %d: node %q is not a host", s.Line, h)
			}
		}
		sessionIdx[s.Name] = i
	}

	// Resolve and group the timeline.
	for _, ev := range sc.Events {
		rev := resolvedEvent{Event: ev, sessionIdx: -1, ab: graph.NoLink, ba: graph.NoLink, host: graph.NoNode}
		switch ev.Op {
		case OpJoin, OpLeave, OpChange:
			rev.sessionIdx = sessionIdx[ev.Session]
		case OpExpectMigrated, OpExpectStranded, OpExpectReoptimized:
			// Nothing to resolve: the assertion reads runtime counters.
		case OpExpectRate:
			if i, ok := sessionIdx[ev.Session]; ok {
				rev.sessionIdx = i
				break
			}
			id, ok := w.nodes[ev.Session]
			if !ok || w.g.Node(id).Kind != graph.Host {
				return nil, fmt.Errorf("scenario: line %d: expect rate names unknown session or host %q", ev.Line, ev.Session)
			}
			rev.host = id
		default:
			ab, ba, err := w.linkBetween(ev.A, ev.B)
			if err != nil {
				return nil, fmt.Errorf("scenario: line %d: %w", ev.Line, err)
			}
			rev.ab, rev.ba = ab, ba
		}
		if n := len(w.epochs); n > 0 && w.epochs[n-1].at == ev.At {
			w.epochs[n-1].events = append(w.epochs[n-1].events, rev)
		} else {
			w.epochs = append(w.epochs, epoch{at: ev.At, events: []resolvedEvent{rev}})
		}
	}
	return w, nil
}

// linkBetween resolves a duplex link by its endpoint names.
func (w *world) linkBetween(a, b string) (graph.LinkID, graph.LinkID, error) {
	na, ok := w.nodes[a]
	if !ok {
		return graph.NoLink, graph.NoLink, fmt.Errorf("unknown node %q", a)
	}
	nb, ok := w.nodes[b]
	if !ok {
		return graph.NoLink, graph.NoLink, fmt.Errorf("unknown node %q", b)
	}
	for _, lid := range w.g.Out(na) {
		l := w.g.Link(lid)
		if l.To == nb && l.Reverse != graph.NoLink {
			return l.ID, l.Reverse, nil
		}
	}
	return graph.NoLink, graph.NoLink, fmt.Errorf("no link between %q and %q", a, b)
}
