package scenario

import (
	"errors"
	"strings"
	"testing"
	"time"

	"bneck/internal/sim"
)

// TestInternetTopologyScript runs a script over the paper-sized internet
// rung: generated hosts resolve by their h<n> names, and a demand-limited
// session gets exactly its demand.
func TestInternetTopologyScript(t *testing.T) {
	sc, err := Parse(`
topology internet paper seed=3 hosts=4
session s1 h0 h1
session s2 h2 h3
at 0ms join s1 demand=10mbps
at 0ms join s2 demand=20mbps
at 1ms expect rate s1 10mbps
at 1ms expect rate s2 20mbps
at 2ms leave s1
at 2ms leave s2
`)
	if err != nil {
		t.Fatal(err)
	}
	if sc.Topo.Kind != TopoInternet {
		t.Fatalf("topology kind %v, want TopoInternet", sc.Topo.Kind)
	}
	res, err := RunSim(sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Epochs) != 3 {
		t.Fatalf("ran %d epochs, want 3", len(res.Epochs))
	}
}

func TestInternetTopologyParseErrors(t *testing.T) {
	for _, tc := range []struct {
		src  string
		want string
	}{
		{"topology internet warp\n", "unknown internet rung"},
		{"topology internet\n", "usage: topology internet"},
		{"topology internet paper hosts=-1\n", "out of range"},
		{"topology internet paper seed=1\nrouter r1\n", "cannot mix"},
	} {
		_, err := Parse(tc.src)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("Parse(%q) error %v, want substring %q", tc.src, err, tc.want)
		}
	}
}

// TestRecheck pins the churn fuzzer's validity gate: after editing event
// timestamps, Recheck re-sorts and accepts consistent timelines and rejects
// perturbations that reorder churn illegally.
func TestRecheck(t *testing.T) {
	src := `
router r1
router r2
link r1 r2 10mbps 1us
host h1 r1
host h2 r2
session s h1 h2
at 1ms join s
at 2ms leave s
`
	sc, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	// A shift that keeps the join before the leave stays legal.
	for i := range sc.Events {
		sc.Events[i].At += 5 * time.Millisecond
	}
	if err := sc.Recheck(); err != nil {
		t.Fatalf("legal perturbation rejected: %v", err)
	}
	// Swapping the order must fail the static replay.
	for i := range sc.Events {
		if sc.Events[i].Op == OpLeave {
			sc.Events[i].At = 0
		}
	}
	if err := sc.Recheck(); err == nil {
		t.Fatal("leave-before-join perturbation accepted")
	}
	// Recheck must have re-sorted even though it rejected.
	for i := 1; i < len(sc.Events); i++ {
		if sc.Events[i-1].At > sc.Events[i].At {
			t.Fatal("Recheck left events unsorted")
		}
	}
}

// TestEpochDeadline pins the quiescence-bound watchdog: a generous deadline
// passes untouched, an absurdly tight one reports ErrQuiescenceOverrun
// wrapped in an EpochError naming the epoch.
func TestEpochDeadline(t *testing.T) {
	src := `
router r1
router r2
link r1 r2 10mbps 1ms
host h1 r1
host h2 r2
session s h1 h2
at 0ms join s demand=5mbps
`
	sc, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunSimOpts(sc, SimOptions{EpochDeadline: time.Minute}); err != nil {
		t.Fatalf("generous deadline failed: %v", err)
	}
	_, err = RunSimOpts(sc, SimOptions{EpochDeadline: time.Nanosecond})
	if !errors.Is(err, ErrQuiescenceOverrun) {
		t.Fatalf("tight deadline error %v, want ErrQuiescenceOverrun", err)
	}
	var ee *EpochError
	if !errors.As(err, &ee) || ee.At != 0 {
		t.Fatalf("error %v does not attribute epoch 0", err)
	}
}

// TestChooserRequiresClassicEngine pins the engine restriction.
func TestChooserRequiresClassicEngine(t *testing.T) {
	sc, err := Parse("router r1\nrouter r2\nlink r1 r2 10mbps 1us\nhost h1 r1\nhost h2 r2\nsession s h1 h2\nat 0ms join s\n")
	if err != nil {
		t.Fatal(err)
	}
	_, err = RunSimOpts(sc, SimOptions{Shards: 2, Chooser: alwaysZero{}})
	if err == nil || !strings.Contains(err.Error(), "classic engine") {
		t.Fatalf("sharded run with a Chooser: error %v, want classic-engine restriction", err)
	}
	if _, err := RunSimOpts(sc, SimOptions{Chooser: alwaysZero{}}); err != nil {
		t.Fatalf("classic run with pick-0 chooser failed: %v", err)
	}
}

type alwaysZero struct{}

func (alwaysZero) Choose(now sim.Time, cands []sim.Choice) int { return 0 }
