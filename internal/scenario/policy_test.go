package scenario

import (
	"strings"
	"testing"

	"bneck/internal/policy"
)

// reoptScript is the canonical diamond: a direct 80 Mbps route and a slower
// 40 Mbps detour. Under `policy reoptimize`, the fail → restore cycle must
// end with the session back on the direct path at the direct rate.
const reoptScript = `
policy reoptimize

router r1
router r2
router r3
link r1 r2 80mbps 1us
link r1 r3 40mbps 1us
link r3 r2 40mbps 1us
host ha r1
host hb r2

session s ha hb

at 0ms  join s
at 2ms  expect rate s 80mbps
at 4ms  fail r1 r2
at 6ms  expect rate s 40mbps
at 6ms  expect migrated 1
at 8ms  restore r1 r2
at 10ms expect rate s 80mbps
at 10ms expect migrated 1
at 10ms expect reoptimized 1
at 10ms expect stranded 0
`

func TestParsePolicyDirective(t *testing.T) {
	sc, err := Parse(reoptScript)
	if err != nil {
		t.Fatal(err)
	}
	if sc.Policy.Kind != policy.ReoptimizeOnRestore {
		t.Fatalf("policy kind = %v", sc.Policy.Kind)
	}

	sc, err = Parse("policy reoptimize stretch=1.5 min-gain=2 capacity-gain=3\nrouter r1\nrouter r2\nlink r1 r2 10mbps 1us\nhost ha r1\nhost hb r2\nsession s ha hb\nat 0ms join s\n")
	if err != nil {
		t.Fatal(err)
	}
	want := policy.Config{Kind: policy.ReoptimizeOnRestore, Stretch: 1.5, MinGain: 2, CapacityGain: 3}
	if sc.Policy != want {
		t.Fatalf("policy = %+v, want %+v", sc.Policy, want)
	}
}

func TestParsePolicyErrors(t *testing.T) {
	cases := map[string]string{
		"policy bogus":                         "unknown policy",
		"policy reoptimize stretch=0.5":        "must be a number",
		"policy reoptimize min-gain=0":         "positive integer",
		"policy reoptimize stretch":            "key=value",
		"policy reoptimize wat=1":              "unknown option",
		"policy pinned stretch=2":              "takes no options",
		"policy reoptimize\npolicy reoptimize": "duplicate policy",
		"at 0ms expect reoptimized -1":         "non-negative",
		"at 0ms expect reoptimized":            "usage",
	}
	for src, want := range cases {
		_, err := Parse(src)
		if err == nil || !strings.Contains(err.Error(), want) {
			t.Errorf("Parse(%q) err = %v, want containing %q", src, err, want)
		}
	}
}

// TestReoptimizeScriptBothTransports is the acceptance criterion: the
// fail → restore diamond ends with the session back on its pre-failure
// shortest path — `expect reoptimized 1` passes — on both transports.
func TestReoptimizeScriptBothTransports(t *testing.T) {
	sc, err := Parse(reoptScript)
	if err != nil {
		t.Fatal(err)
	}
	simRes, err := RunSim(sc)
	if err != nil {
		t.Fatalf("sim: %v", err)
	}
	if simRes.Reoptimizations != 1 {
		t.Fatalf("sim reoptimizations = %d", simRes.Reoptimizations)
	}
	if simRes.ReconfigPackets == 0 {
		t.Fatal("sim reconfig packets = 0")
	}
	liveRes, err := RunLive(sc)
	if err != nil {
		t.Fatalf("live: %v", err)
	}
	if liveRes.Reoptimizations != 1 {
		t.Fatalf("live reoptimizations = %d", liveRes.Reoptimizations)
	}
	if liveRes.ReconfigPackets == 0 {
		t.Fatal("live reconfig packets = 0")
	}
}

// TestPinnedScriptKeepsDetour: the same timeline without the policy line
// stays on the detour — and a reoptimized assertion can pin that, too.
func TestPinnedScriptKeepsDetour(t *testing.T) {
	src := strings.Replace(reoptScript, "policy reoptimize\n", "", 1)
	src = strings.Replace(src, "at 10ms expect rate s 80mbps", "at 10ms expect rate s 40mbps", 1)
	src = strings.Replace(src, "at 10ms expect reoptimized 1", "at 10ms expect reoptimized 0", 1)
	sc, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if sc.Policy.Enabled() {
		t.Fatal("default policy must be pinned")
	}
	if _, err := RunSim(sc); err != nil {
		t.Fatalf("sim: %v", err)
	}
	if _, err := RunLive(sc); err != nil {
		t.Fatalf("live: %v", err)
	}
}

// TestExpectReoptimizedFails: a wrong count is a script error, naming the
// line.
func TestExpectReoptimizedFails(t *testing.T) {
	src := strings.Replace(reoptScript, "at 10ms expect reoptimized 1", "at 10ms expect reoptimized 5", 1)
	sc, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunSim(sc); err == nil || !strings.Contains(err.Error(), "expect reoptimized 5") {
		t.Fatalf("sim err = %v, want an expect reoptimized failure", err)
	}
	if _, err := RunLive(sc); err == nil || !strings.Contains(err.Error(), "expect reoptimized 5") {
		t.Fatalf("live err = %v, want an expect reoptimized failure", err)
	}
}
