package scenario

import (
	"errors"
	"fmt"
	"io"
	"strings"
	"time"

	"bneck/internal/graph"
	"bneck/internal/live"
	"bneck/internal/network"
	"bneck/internal/rate"
	"bneck/internal/sim"
)

// EpochResult summarizes one reconfiguration epoch: all events sharing a
// timestamp, the re-quiescence that followed, and the network state after
// validation.
type EpochResult struct {
	// At is the scripted epoch time (virtual for the simulator).
	At time.Duration
	// Applied is when the epoch actually fired: quiescence of a previous
	// epoch can overrun the scripted time, in which case the events apply
	// immediately after it.
	Applied time.Duration
	// Events describes the epoch's events.
	Events []string
	// Quiescence is the virtual time the network went silent again
	// (simulator only).
	Quiescence time.Duration
	// Requiescence = Quiescence − Applied, the packets-to-silence latency the
	// paper cares about (simulator only).
	Requiescence time.Duration
	// Packets sent during the epoch (simulator only).
	Packets uint64
	// Active and Stranded count sessions after the epoch.
	Active   int
	Stranded int
}

// Result is a full scenario run. Every epoch passed oracle validation.
type Result struct {
	Transport    string
	Epochs       []EpochResult
	TotalPackets uint64
	Migrations   uint64
	// Reoptimizations counts policy-driven reroutes (nonzero only with a
	// `policy reoptimize` script directive).
	Reoptimizations uint64
	// ReconfigPackets is the control-packet cost of topology
	// reconfigurations: Leave cascades of force-departed incarnations plus
	// Join cascades of topology-driven rejoins.
	ReconfigPackets uint64
	// Speculation holds the sharded engine's optimistic-execution counters
	// (zero unless the run used SimOptions.Speculate).
	Speculation sim.SpeculationStats
}

// SimOptions selects the engine RunSimOpts drives a script on. The zero
// value reproduces RunSim: the classic serial engine. Every combination
// yields byte-identical epoch tables — the options change only scheduling.
type SimOptions struct {
	// Shards selects the engine: 0 is the classic serial engine, n ≥ 1 the
	// sharded engine with n shards, and n < 0 the sharded engine auto-tuned
	// from GOMAXPROCS (sim.AutoShards / sim.AutoWindowBatch).
	Shards int
	// WindowBatch bounds consecutive conservative windows per sharded
	// fork/join; 0 keeps the engine default. No effect with Shards == 0.
	WindowBatch int
	// Speculate enables optimistic window execution on the sharded engine.
	// No effect with Shards == 0.
	Speculate bool
	// Chooser installs a schedule controller on the engine's same-time
	// tie-breaking — the model-checking hook (internal/mc). Requires the
	// classic engine: RunSimOpts errors if combined with Shards != 0.
	Chooser sim.Chooser
	// OracleCrossCheck makes the incremental oracle mirror every commit with
	// an independent full solve (waterfill.ErrCrossCheck on divergence) —
	// the explorer's oracle-exactness invariant.
	OracleCrossCheck bool
	// EpochDeadline bounds each epoch's re-quiescence on the classic engine:
	// a daemon watchdog stops the run once the clock passes applied+deadline
	// with regular events still pending, and RunSimOpts returns an
	// EpochError wrapping ErrQuiescenceOverrun. Zero disables the bound.
	EpochDeadline time.Duration
}

// ErrQuiescenceOverrun reports an epoch that was still busy when its
// SimOptions.EpochDeadline expired — the schedule explorer's quiescence-bound
// invariant. Test with errors.Is.
var ErrQuiescenceOverrun = errors.New("scenario: quiescence bound overrun")

// EpochError attributes a validation, expectation, or quiescence failure to
// the scripted epoch it occurred in. The schedule explorer unwraps it to
// classify which invariant a schedule violated.
type EpochError struct {
	// At is the scripted epoch time.
	At time.Duration
	// Err is the underlying failure (network.Validate, an expect assertion,
	// or ErrQuiescenceOverrun).
	Err error
}

func (e *EpochError) Error() string { return fmt.Sprintf("scenario: epoch %v: %v", e.At, e.Err) }
func (e *EpochError) Unwrap() error { return e.Err }

// RunSim executes the script on the deterministic discrete-event simulator
// (classic serial engine), validating against the water-filling oracle at
// every quiescent epoch.
func RunSim(sc *Script) (*Result, error) {
	return RunSimOpts(sc, SimOptions{})
}

// RunSimOpts is RunSim with an engine choice: classic serial, sharded, or
// sharded with optimistic window execution. Scenario scripts are the
// misspeculation torture tests — every epoch's churn lands as global barrier
// events between speculative attempts, and cross-shard control cascades
// inside an epoch force parks — so the epoch tables double as a determinism
// check across all engine settings.
func RunSimOpts(sc *Script, opt SimOptions) (*Result, error) {
	w, err := build(sc)
	if err != nil {
		return nil, err
	}
	cfg := network.DefaultConfig()
	cfg.PathPolicy = sc.Policy
	cfg.Speculate = opt.Speculate
	// Epoch validation (every `expect rate` table) reads the delta-driven
	// oracle: script events feed the mirror as they execute, so each epoch
	// re-levels what the epoch churned instead of full-solving. Rates are
	// byte-identical either way; scenario scripts are small, so the threshold
	// is raised to keep them on the delta path rather than the cascade
	// fall-back.
	cfg.IncrementalOracle = true
	cfg.OracleFallbackPercent = 400
	cfg.OracleCrossCheck = opt.OracleCrossCheck
	shards := opt.Shards
	windowBatch := opt.WindowBatch
	if shards < 0 {
		shards = sim.AutoShards()
		if windowBatch <= 0 {
			windowBatch = sim.AutoWindowBatch()
		}
	}
	var net *network.Network
	var eng *sim.Engine
	var now func() sim.Time
	if shards >= 1 {
		if opt.Chooser != nil {
			return nil, errors.New("scenario: SimOptions.Chooser requires the classic engine (Shards == 0)")
		}
		she := sim.NewSharded(shards)
		if windowBatch > 0 {
			she.SetWindowBatch(windowBatch)
		}
		net = network.NewSharded(w.g, she, cfg)
		now = she.Now
	} else {
		eng = sim.New()
		eng.SetChooser(opt.Chooser)
		net = network.New(w.g, eng, cfg)
		now = eng.Now
	}
	res := graph.NewResolver(w.g, 256)
	sessions := make([]*network.Session, len(sc.Sessions))
	for i, d := range sc.Sessions {
		path, err := res.HostPath(w.nodes[d.Src], w.nodes[d.Dst])
		if err != nil {
			return nil, fmt.Errorf("scenario: session %q: %w", d.Name, err)
		}
		s, err := net.NewSession(w.nodes[d.Src], w.nodes[d.Dst], path)
		if err != nil {
			return nil, fmt.Errorf("scenario: session %q: %w", d.Name, err)
		}
		sessions[i] = s
	}

	out := &Result{Transport: "sim"}
	// epochGen invalidates the previous epoch's quiescence watchdog: a
	// daemon scheduled past an epoch's actual quiescence fires during some
	// later epoch's run, where pending events are legitimate.
	epochGen := 0
	overrun := false
	for _, ep := range w.epochs {
		at := ep.at
		if t := now(); at < t {
			at = t // the previous epoch's convergence overran this timestamp
		}
		before := net.Stats().Total()
		for _, ev := range ep.events {
			switch ev.Op {
			case OpJoin:
				net.ScheduleJoin(sessions[ev.sessionIdx], at, ev.Demand)
			case OpLeave:
				net.ScheduleLeave(sessions[ev.sessionIdx], at)
			case OpChange:
				net.ScheduleChange(sessions[ev.sessionIdx], at, ev.Demand)
			case OpFail:
				net.ScheduleLinkFail(at, ev.ab, ev.ba)
			case OpRestore:
				net.ScheduleLinkRestore(at, ev.ab, ev.ba)
			case OpSetCapacity:
				net.ScheduleSetCapacity(at, ev.Capacity, ev.ab, ev.ba)
			}
		}
		if opt.EpochDeadline > 0 && eng != nil {
			epochGen++
			gen := epochGen
			deadline := at + opt.EpochDeadline
			eng.DaemonAt(deadline, func() {
				if gen == epochGen && eng.Pending() > 0 {
					overrun = true
					eng.Stop()
				}
			})
		}
		q := net.Run()
		if overrun {
			return nil, &EpochError{At: ep.at, Err: fmt.Errorf("%w: applied at %v, still busy at %v",
				ErrQuiescenceOverrun, at, at+opt.EpochDeadline)}
		}
		if err := net.Validate(); err != nil {
			return nil, &EpochError{At: ep.at, Err: err}
		}
		if err := checkExpectations(w, sc, sessions, ep, counters{net.Migrations(), net.Reoptimizations(), countStranded(sessions)}); err != nil {
			return nil, &EpochError{At: ep.at, Err: err}
		}
		er := EpochResult{
			At:      ep.at,
			Applied: at,
			Events:  describe(ep.events),
			Packets: net.Stats().Total() - before,
		}
		if q > at {
			er.Quiescence = q
			er.Requiescence = q - at
		} else {
			er.Quiescence = at // the epoch generated no traffic
		}
		er.Active, er.Stranded = countSim(sessions)
		out.Epochs = append(out.Epochs, er)
	}
	out.TotalPackets = net.Stats().Total()
	out.Migrations = net.Migrations()
	out.Reoptimizations = net.Reoptimizations()
	out.ReconfigPackets = net.ReconfigPackets()
	out.Speculation = net.SpeculationStats()
	return out, nil
}

// RunLive executes the script on the concurrent actor runtime. Epochs apply
// in order; scripted timestamps only sequence them (the runtime has no
// virtual clock). Every epoch is driven to quiescence (by termination
// detection) and validated.
func RunLive(sc *Script) (*Result, error) {
	w, err := build(sc)
	if err != nil {
		return nil, err
	}
	rt := live.New(w.g)
	defer rt.Close()
	rt.SetPathPolicy(sc.Policy)
	res := graph.NewResolver(w.g, 256)
	sessions := make([]*live.Session, len(sc.Sessions))
	for i, d := range sc.Sessions {
		path, err := res.HostPath(w.nodes[d.Src], w.nodes[d.Dst])
		if err != nil {
			return nil, fmt.Errorf("scenario: session %q: %w", d.Name, err)
		}
		s, err := rt.NewSession(path)
		if err != nil {
			return nil, fmt.Errorf("scenario: session %q: %w", d.Name, err)
		}
		sessions[i] = s
	}

	out := &Result{Transport: "live"}
	for _, ep := range w.epochs {
		for _, ev := range ep.events {
			switch ev.Op {
			case OpJoin:
				sessions[ev.sessionIdx].Join(ev.Demand)
			case OpLeave:
				sessions[ev.sessionIdx].Leave()
			case OpChange:
				sessions[ev.sessionIdx].Change(ev.Demand)
			case OpFail:
				rt.FailLinks(ev.ab, ev.ba)
			case OpRestore:
				rt.RestoreLinks(ev.ab, ev.ba)
			case OpSetCapacity:
				rt.SetLinkCapacity(ev.Capacity, ev.ab, ev.ba)
			}
		}
		rt.WaitQuiescent()
		if err := rt.Validate(); err != nil {
			return nil, &EpochError{At: ep.at, Err: err}
		}
		if err := checkExpectations(w, sc, sessions, ep, counters{rt.Migrations(), rt.Reoptimizations(), countStranded(sessions)}); err != nil {
			return nil, &EpochError{At: ep.at, Err: err}
		}
		er := EpochResult{At: ep.at, Applied: ep.at, Events: describe(ep.events)}
		er.Active, er.Stranded = countLive(sessions)
		out.Epochs = append(out.Epochs, er)
	}
	out.Migrations = rt.Migrations()
	out.Reoptimizations = rt.Reoptimizations()
	out.ReconfigPackets = rt.ReconfigPackets()
	return out, nil
}

// ratedSession is the assertion surface both transports' sessions share.
type ratedSession interface {
	Active() bool
	Stranded() bool
	Rate() (rate.Rate, bool)
}

// counters are the runtime counters expect assertions read, sampled after
// an epoch quiesced and validated.
type counters struct {
	migrated    uint64
	reoptimized uint64
	stranded    int
}

// checkExpectations evaluates an epoch's expect events after it quiesced and
// validated: golden rates, the cumulative migration and re-optimization
// counts, and the current stranded-session count — identically on both
// transports.
func checkExpectations[S ratedSession](w *world, sc *Script, sessions []S, ep epoch, c counters) error {
	for _, ev := range ep.events {
		switch ev.Op {
		case OpExpectRate:
			got := assertedRate(w, sc, sessions, ev)
			if !got.Equal(ev.Demand) {
				return fmt.Errorf("scenario: line %d: expect rate %s %v: got %v after epoch %v",
					ev.Line, ev.Session, ev.Demand, got, ep.at)
			}
		case OpExpectMigrated:
			if c.migrated != uint64(ev.Count) {
				return fmt.Errorf("scenario: line %d: expect migrated %d: got %d after epoch %v",
					ev.Line, ev.Count, c.migrated, ep.at)
			}
		case OpExpectStranded:
			if c.stranded != ev.Count {
				return fmt.Errorf("scenario: line %d: expect stranded %d: got %d after epoch %v",
					ev.Line, ev.Count, c.stranded, ep.at)
			}
		case OpExpectReoptimized:
			if c.reoptimized != uint64(ev.Count) {
				return fmt.Errorf("scenario: line %d: expect reoptimized %d: got %d after epoch %v",
					ev.Line, ev.Count, c.reoptimized, ep.at)
			}
		}
	}
	return nil
}

func countStranded[S ratedSession](sessions []S) int {
	n := 0
	for _, s := range sessions {
		if s.Stranded() {
			n++
		}
	}
	return n
}

// assertedRate evaluates one expect-rate assertion: a session's granted
// rate, or the sum of a host's active sessions' granted rates (zero when
// departed, stranded, or rate-less).
func assertedRate[S ratedSession](w *world, sc *Script, sessions []S, ev resolvedEvent) rate.Rate {
	sum := rate.Zero
	for i, s := range sessions {
		if ev.sessionIdx >= 0 && i != ev.sessionIdx {
			continue
		}
		if ev.sessionIdx < 0 && w.nodes[sc.Sessions[i].Src] != ev.host {
			continue
		}
		if !s.Active() || s.Stranded() {
			continue
		}
		if r, ok := s.Rate(); ok {
			sum = sum.Add(r)
		}
	}
	return sum
}

func countSim(sessions []*network.Session) (active, stranded int) {
	for _, s := range sessions {
		switch {
		case s.Stranded():
			stranded++
		case s.Active():
			active++
		}
	}
	return
}

func countLive(sessions []*live.Session) (active, stranded int) {
	for _, s := range sessions {
		switch {
		case s.Stranded():
			stranded++
		case s.Active():
			active++
		}
	}
	return
}

func describe(events []resolvedEvent) []string {
	out := make([]string, len(events))
	for i, ev := range events {
		switch ev.Op {
		case OpJoin, OpLeave, OpChange:
			out[i] = fmt.Sprintf("%s %s", ev.Op, ev.Session)
		case OpExpectRate:
			out[i] = fmt.Sprintf("%s %s %v", ev.Op, ev.Session, ev.Demand)
		case OpExpectMigrated, OpExpectStranded, OpExpectReoptimized:
			out[i] = fmt.Sprintf("%s %d", ev.Op, ev.Count)
		case OpSetCapacity:
			out[i] = fmt.Sprintf("%s %s-%s %v", ev.Op, ev.A, ev.B, ev.Capacity)
		default:
			out[i] = fmt.Sprintf("%s %s-%s", ev.Op, ev.A, ev.B)
		}
	}
	return out
}

// Format renders a result as the table cmd/bneck prints.
func Format(w io.Writer, res *Result) {
	fmt.Fprintf(w, "%-10s %-12s %-14s %10s %8s %8s  %s\n",
		"epoch", "requiesced", "re-quiescence", "packets", "active", "strand", "events")
	for _, ep := range res.Epochs {
		q, rq := "-", "-"
		if res.Transport == "sim" {
			q = ep.Quiescence.Round(time.Microsecond).String()
			rq = ep.Requiescence.Round(time.Microsecond).String()
		}
		fmt.Fprintf(w, "%-10v %-12s %-14s %10d %8d %8d  %s\n",
			ep.At, q, rq, ep.Packets, ep.Active, ep.Stranded, strings.Join(ep.Events, ", "))
	}
	fmt.Fprintf(w, "total packets: %d, migrations: %d, reoptimizations: %d, reconfig packets: %d (every epoch validated against the oracle)\n",
		res.TotalPackets, res.Migrations, res.Reoptimizations, res.ReconfigPackets)
	if s := res.Speculation; s.Attempts > 0 {
		fmt.Fprintf(w, "speculation: %d attempts, %d commits, %d replays, %d speculative events\n",
			s.Attempts, s.Commits, s.Replays, s.Events)
	}
}
