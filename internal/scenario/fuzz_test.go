package scenario

import (
	"strings"
	"testing"
)

// FuzzParse throws arbitrary scripts at the parser: it must never panic, and
// whatever it accepts must survive the static timeline replay and — for
// cheap hand-built topologies — instantiation. Seeds cover the documented
// grammar plus the malformed shapes the parser guards against (bad
// timestamps, unknown nodes, events on failed links).
func FuzzParse(f *testing.F) {
	f.Add(handScript)
	f.Add("topology transit-stub small lan seed=7 hosts=4\nsession s h0 h1\nat 0s join s\n")
	f.Add("topology internet paper seed=3 hosts=4\nsession s h0 h1\nat 0s join s demand=10mbps\n")
	f.Add("topology internet warp\n")
	f.Add("router r1\nrouter r2\nlink r1 r2 10mbps 1us\nat 1ms fail r1 r2\nat 2ms restore r1 r2\n")
	f.Add("at 99h join ghost\n")
	f.Add("at zzz join s\n")
	f.Add("at -1s fail a b\n")
	f.Add("router r1\nhost h1 r1\nhost h2 r1\nsession s h1 h2\nat 0s join s demand=0mbps\n")
	f.Add("router r1\nrouter r2\nlink r1 r2 10mbps 1us\nat 0s fail r1 r2\nat 1s set-capacity r1 r2 5mbps\n")
	f.Add("router r1\nrouter r2\nlink r1 r2 10mbps 1us\nat 0s fail r1 r2\nat 1s fail r1 r2\n")
	f.Add("topology transit-stub big wan hosts=100000000\n")
	f.Add("host h1 nowhere\n")
	f.Add("session s h h\n")
	f.Add("at 1ms set-capacity r1 r2 unlimited\n")
	f.Add("# empty\n\n\n")
	f.Add(strings.Repeat("router r\n", 2))
	f.Add(repeatScript)
	f.Add("router r1\nrouter r2\nlink r1 r2 10mbps 1us\nrepeat 3 {\nat 1ms fail r1 r2\nat 2ms restore r1 r2\n}\nat 7ms expect migrated 0\nat 7ms expect stranded 0\n")
	f.Add("repeat 2 {\n")
	f.Add("}\n")
	f.Add("repeat 999999999 {\nat 1ms expect stranded 0\n}\n")
	f.Add("repeat 9223372036854775807 {\nat 1ns fail r1 r2\nat 2ns restore r1 r2\n}\n")
	f.Add("at 1ms expect migrated -5\n")

	f.Fuzz(func(t *testing.T, src string) {
		sc, err := Parse(src)
		if err != nil {
			if sc != nil {
				t.Fatal("Parse returned both a script and an error")
			}
			return
		}
		// Accepted scripts must be internally consistent.
		for i := 1; i < len(sc.Events); i++ {
			if sc.Events[i-1].At > sc.Events[i].At {
				t.Fatalf("events not sorted: %v before %v", sc.Events[i-1].At, sc.Events[i].At)
			}
		}
		if err := sc.checkTimeline(); err != nil {
			t.Fatalf("accepted script fails its own timeline check: %v", err)
		}
		// Hand-built topologies are bounded by the input size: instantiating
		// them must either error cleanly or produce a valid graph. (Generated
		// topologies are skipped: a fuzz case should not pay for an 11,000
		// router build.)
		if sc.Topo.Kind == TopoHand {
			w, err := build(sc)
			if err != nil {
				return
			}
			if err := w.g.Validate(); err != nil {
				t.Fatalf("built graph invalid: %v", err)
			}
		}
	})
}
