package scenario

import (
	"os"
	"reflect"
	"testing"

	"bneck/internal/sim"
)

// TestRunSimOptsEngineGrid runs the hand script across the whole engine
// grid — classic serial, sharded at 1/2/4 shards, speculation on and off —
// and requires identical results everywhere. Epoch tables carry virtual
// quiescence times and packet counts, so this pins full determinism, not
// just final rates.
func TestRunSimOptsEngineGrid(t *testing.T) {
	sc, err := Parse(handScript)
	if err != nil {
		t.Fatal(err)
	}
	base, err := RunSim(sc)
	if err != nil {
		t.Fatal(err)
	}
	for _, shards := range []int{1, 2, 4} {
		for _, speculate := range []bool{false, true} {
			for _, batch := range []int{0, 1} {
				got, err := RunSimOpts(sc, SimOptions{Shards: shards, WindowBatch: batch, Speculate: speculate})
				if err != nil {
					t.Fatalf("shards=%d batch=%d speculate=%v: %v", shards, batch, speculate, err)
				}
				got.Speculation = sim.SpeculationStats{} // scheduling counters, not results
				if !reflect.DeepEqual(base, got) {
					t.Fatalf("shards=%d batch=%d speculate=%v diverges from classic:\n%+v\n%+v",
						shards, batch, speculate, base, got)
				}
			}
		}
	}
}

// TestSpeculateScenarioReplaysAndCommits pins the checked-in speculation
// torture script: at 2 shards (the script's designed cut) with speculation
// on it must exercise both outcomes — parks from local cascades overrunning
// journaled cross-cut arrivals and commits from quiet convergence tails —
// and still produce the classic engine's exact epoch table.
func TestSpeculateScenarioReplaysAndCommits(t *testing.T) {
	src, err := os.ReadFile("../../examples/scenarios/speculate.bneck")
	if err != nil {
		t.Fatal(err)
	}
	sc, err := Parse(string(src))
	if err != nil {
		t.Fatal(err)
	}
	base, err := RunSim(sc)
	if err != nil {
		t.Fatal(err)
	}
	got, err := RunSimOpts(sc, SimOptions{Shards: 2, Speculate: true})
	if err != nil {
		t.Fatal(err)
	}
	st := got.Speculation
	if st.Attempts == 0 {
		t.Fatal("torture scenario never attempted speculation")
	}
	if st.Replays == 0 {
		t.Fatalf("cross-shard cascades forced no replays: %+v", st)
	}
	if st.Commits == 0 {
		t.Fatalf("convergence tails committed no attempts: %+v", st)
	}
	got.Speculation = sim.SpeculationStats{}
	if !reflect.DeepEqual(base, got) {
		t.Fatalf("speculation changed results:\n%+v\n%+v", base, got)
	}
}

// TestRunSimOptsAutoShards: Shards < 0 resolves to the GOMAXPROCS-derived
// shard count and still matches the classic engine.
func TestRunSimOptsAutoShards(t *testing.T) {
	sc, err := Parse(handScript)
	if err != nil {
		t.Fatal(err)
	}
	base, err := RunSim(sc)
	if err != nil {
		t.Fatal(err)
	}
	got, err := RunSimOpts(sc, SimOptions{Shards: -1, Speculate: true})
	if err != nil {
		t.Fatal(err)
	}
	got.Speculation = sim.SpeculationStats{}
	if !reflect.DeepEqual(base, got) {
		t.Fatalf("auto-sharded run diverges from classic:\n%+v\n%+v", base, got)
	}
}
