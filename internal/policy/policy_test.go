package policy

import (
	"testing"

	"bneck/internal/rate"
)

func TestZeroValueIsPinned(t *testing.T) {
	var c Config
	if c.Enabled() {
		t.Fatal("zero-value config must be Pinned")
	}
	if c.ShouldMigrate(10, 3, false) {
		t.Fatal("Pinned must never migrate")
	}
	if c.CapacityTriggers(rate.Mbps(10), rate.Mbps(1000)) {
		t.Fatal("Pinned must never fire the capacity trigger")
	}
}

func TestShouldMigrateDefaults(t *testing.T) {
	c := Config{Kind: ReoptimizeOnRestore}
	cases := []struct {
		cur, best int
		want      bool
	}{
		{4, 3, true},  // any strict improvement
		{4, 4, false}, // equal: stay
		{3, 4, false}, // best longer (can't happen, but must not migrate)
		{4, 0, false}, // degenerate best path
		{10, 2, true}, // large improvement
		{2, 1, true},  // minimal paths still improve
	}
	for _, tc := range cases {
		if got := c.ShouldMigrate(tc.cur, tc.best, false); got != tc.want {
			t.Errorf("ShouldMigrate(%d, %d) = %t, want %t", tc.cur, tc.best, got, tc.want)
		}
	}
}

func TestStretchHysteresis(t *testing.T) {
	c := Config{Kind: ReoptimizeOnRestore, Stretch: 1.5}
	if c.ShouldMigrate(4, 3, false) {
		t.Fatal("4 hops is within 1.5× of 3 — must stay")
	}
	if !c.ShouldMigrate(5, 3, false) {
		t.Fatal("5 hops exceeds 1.5× of 3 — must migrate")
	}
	// The capacity-upgrade bypass ignores the stretch.
	if !c.ShouldMigrate(4, 3, true) {
		t.Fatal("upgraded sweep must bypass the stretch hysteresis")
	}
	if c.ShouldMigrate(3, 3, true) {
		t.Fatal("upgraded sweep still requires a strict improvement")
	}
}

func TestMinGainHysteresis(t *testing.T) {
	c := Config{Kind: ReoptimizeOnRestore, MinGain: 3}
	if c.ShouldMigrate(5, 3, false) {
		t.Fatal("gain of 2 hops is below MinGain 3 — must stay")
	}
	if !c.ShouldMigrate(6, 3, false) {
		t.Fatal("gain of 3 hops meets MinGain 3 — must migrate")
	}
}

func TestCapacityTriggers(t *testing.T) {
	c := Config{Kind: ReoptimizeOnRestore} // default gain: 2×
	if c.CapacityTriggers(rate.Mbps(100), rate.Mbps(150)) {
		t.Fatal("1.5× increase is below the default 2× threshold")
	}
	if !c.CapacityTriggers(rate.Mbps(100), rate.Mbps(200)) {
		t.Fatal("2× increase must trigger")
	}
	if c.CapacityTriggers(rate.Mbps(100), rate.Mbps(50)) {
		t.Fatal("a decrease must never trigger")
	}
	any := Config{Kind: ReoptimizeOnRestore, CapacityGain: 1}
	if !any.CapacityTriggers(rate.Mbps(100), rate.Mbps(101)) {
		t.Fatal("gain 1 must trigger on any strict increase")
	}
	if any.CapacityTriggers(rate.Mbps(100), rate.Mbps(100)) {
		t.Fatal("equal capacity must never trigger")
	}
}

func TestParse(t *testing.T) {
	for s, want := range map[string]Kind{
		"pinned":                Pinned,
		"reoptimize":            ReoptimizeOnRestore,
		"reoptimize-on-restore": ReoptimizeOnRestore,
	} {
		got, ok := Parse(s)
		if !ok || got != want {
			t.Errorf("Parse(%q) = %v, %t", s, got, ok)
		}
	}
	if _, ok := Parse("bogus"); ok {
		t.Fatal("Parse accepted a bogus policy name")
	}
	if Pinned.String() != "pinned" || ReoptimizeOnRestore.String() != "reoptimize" {
		t.Fatal("Kind.String drifted from the scenario-DSL spelling")
	}
}
