// Package policy defines the session path re-optimization policy shared by
// both transports (internal/network and internal/live), the scenario runner
// and the public API.
//
// B-Neck pins a session's path at join time: the protocol has no notion of
// "a better path appeared", only of paths that stopped existing. After a
// failure → migration → restore cycle, sessions therefore stay parked on
// their detour paths forever, inflating latency and link load even though
// the protocol is quiescent again. A path policy decides whether the
// transport may migrate such sessions back — through the protocol's own
// Leave → reroute → Join machinery, a fresh incarnation per reroute, exactly
// like a failure-driven migration — once a topology event signals that
// shorter paths may exist.
//
// Two kinds exist. Pinned (the default) is the paper's behavior: paths never
// move unless a failure forces them to. ReoptimizeOnRestore re-runs
// shortest-path over the active population whenever a link is restored (and,
// secondarily, when a link's capacity is increased past a threshold) and
// migrates every session whose current path is longer than its best path by
// the configured stretch/hysteresis margin.
//
// Triggers are deliberately coarse — whole-population sweeps at restore
// barriers — because that is what keeps the policy deterministic: the sweep
// runs in serial context (a barrier event on the sharded engine, under the
// runtime mutex on the live transport), iterates sessions in creation order,
// and resolves paths with the deterministic BFS resolver, so policy-on runs
// are byte-identical at every shard count and window-batch setting.
package policy

import "bneck/internal/rate"

// Kind selects a path re-optimization policy.
type Kind int

const (
	// Pinned keeps every session on the path it joined on until a failure
	// forces a migration — the paper's (and this repository's historical)
	// behavior.
	Pinned Kind = iota
	// ReoptimizeOnRestore re-runs shortest-path for the active sessions when
	// a link restore (or a sufficiently large capacity increase) signals
	// that shorter paths may have appeared, and migrates sessions whose
	// current path exceeds the stretch/hysteresis margin.
	ReoptimizeOnRestore
)

// String returns the scenario-DSL spelling of the kind.
func (k Kind) String() string {
	switch k {
	case Pinned:
		return "pinned"
	case ReoptimizeOnRestore:
		return "reoptimize"
	default:
		return "unknown"
	}
}

// Config is a policy with its knobs. The zero value is Pinned with default
// knobs, so existing transport configurations keep their behavior.
type Config struct {
	Kind Kind
	// Stretch is the multiplicative hysteresis: a session migrates only when
	// len(current) > Stretch × len(best). Values ≤ 1 mean any strictly
	// longer path qualifies (the default). A stretch of 1.5 tolerates detours
	// up to 50% longer than the best path.
	Stretch float64
	// MinGain is the additive hysteresis: a session migrates only when the
	// move saves at least MinGain hops. Values ≤ 1 default to 1 (any strict
	// improvement).
	MinGain int
	// CapacityGain gates the capacity-increase trigger: a SetCapacity that
	// raises a link's capacity to at least CapacityGain × the old value runs
	// a re-optimization sweep. Values ≤ 0 default to 2 (a doubling). With
	// the min-hop resolver a capacity change can never alter a best path, so
	// this trigger treats the upgrade as an operator signal instead: sessions
	// whose best path crosses an upgraded link migrate whenever strictly
	// shorter, bypassing the Stretch/MinGain hysteresis.
	CapacityGain float64
}

// Default returns the default policy: Pinned, with default knobs.
func Default() Config { return Config{} }

// Enabled reports whether the policy performs re-optimization sweeps at all.
func (c Config) Enabled() bool { return c.Kind == ReoptimizeOnRestore }

func (c Config) stretch() float64 {
	if c.Stretch < 1 {
		return 1
	}
	return c.Stretch
}

func (c Config) minGain() int {
	if c.MinGain < 1 {
		return 1
	}
	return c.MinGain
}

func (c Config) capacityGain() float64 {
	if c.CapacityGain <= 0 {
		return 2
	}
	return c.CapacityGain
}

// ShouldMigrate decides whether a session on a curLen-hop path should move
// to its bestLen-hop best path. upgraded marks a sweep triggered by a
// capacity increase for a session whose best path crosses an upgraded link:
// the hysteresis knobs are bypassed and any strict improvement migrates.
func (c Config) ShouldMigrate(curLen, bestLen int, upgraded bool) bool {
	if !c.Enabled() || bestLen <= 0 || bestLen >= curLen {
		return false
	}
	if upgraded {
		return true
	}
	if curLen-bestLen < c.minGain() {
		return false
	}
	return float64(curLen) > c.stretch()*float64(bestLen)
}

// CapacityTriggers reports whether a capacity change from old to new fires
// the re-optimization sweep: the policy must be enabled and the new capacity
// must be a strict increase of at least CapacityGain × old.
func (c Config) CapacityTriggers(old, new rate.Rate) bool {
	if !c.Enabled() || !old.Less(new) {
		return false
	}
	return new.Float64() >= c.capacityGain()*old.Float64()
}

// Parse maps a policy name — "pinned" or "reoptimize" (alias
// "reoptimize-on-restore") — to its Kind. ok is false for anything else.
func Parse(s string) (Kind, bool) {
	switch s {
	case "pinned":
		return Pinned, true
	case "reoptimize", "reoptimize-on-restore":
		return ReoptimizeOnRestore, true
	default:
		return Pinned, false
	}
}
