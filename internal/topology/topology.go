// Package topology generates the transit-stub networks of the paper's
// evaluation (Section IV): gt-itm-style Internet topologies at three sizes
// (Small 110, Medium 1,100, Big 11,000 routers), with the paper's capacity
// tiers (100 Mbps host links, 200 Mbps stub links, 500 Mbps transit-router
// links) and LAN (1 µs everywhere) or WAN (1–10 ms router links) propagation
// models. Generation is fully deterministic given a seed.
package topology

import (
	"fmt"
	"math/rand"
	"time"

	"bneck/internal/graph"
	"bneck/internal/rate"
)

// Scenario selects the propagation-delay model.
type Scenario int

const (
	// LAN fixes every propagation delay at 1 µs.
	LAN Scenario = iota + 1
	// WAN draws router-link delays uniformly from 1–10 ms; host links stay
	// at 1 µs.
	WAN
)

func (s Scenario) String() string {
	if s == LAN {
		return "LAN"
	}
	return "WAN"
}

// Params sizes a transit-stub topology. Stub domains are distributed
// round-robin over transit routers.
type Params struct {
	Name             string
	TransitDomains   int
	TransitPerDomain int
	StubDomains      int // total, spread over all transit routers
	RoutersPerStub   int
}

// Routers returns the total router count the parameters produce.
func (p Params) Routers() int {
	return p.TransitDomains*p.TransitPerDomain + p.StubDomains*p.RoutersPerStub
}

// The paper's three topology sizes.
var (
	// Small is the paper's 110-router network.
	Small = Params{Name: "Small", TransitDomains: 1, TransitPerDomain: 10, StubDomains: 10, RoutersPerStub: 10}
	// Medium is the paper's 1,100-router network.
	Medium = Params{Name: "Medium", TransitDomains: 10, TransitPerDomain: 10, StubDomains: 100, RoutersPerStub: 10}
	// Big is the paper's 11,000-router network.
	Big = Params{Name: "Big", TransitDomains: 10, TransitPerDomain: 10, StubDomains: 1090, RoutersPerStub: 10}
)

// The paper's capacity tiers.
var (
	HostLinkCapacity    = rate.Mbps(100)
	StubLinkCapacity    = rate.Mbps(200)
	TransitLinkCapacity = rate.Mbps(500)
)

// Network is a generated topology plus the bookkeeping needed to attach
// hosts and resolve session paths.
type Network struct {
	Graph          *graph.Graph
	Params         Params
	Scenario       Scenario
	TransitRouters []graph.NodeID
	StubRouters    []graph.NodeID
	Hosts          []graph.NodeID

	scenario Scenario
	rng      *rand.Rand
}

// Generate builds a transit-stub topology deterministically from the seed.
func Generate(p Params, scen Scenario, seed int64) (*Network, error) {
	if p.TransitDomains < 1 || p.TransitPerDomain < 1 || p.StubDomains < 0 || p.RoutersPerStub < 1 {
		return nil, fmt.Errorf("topology: invalid params %+v", p)
	}
	rng := rand.New(rand.NewSource(seed))
	n := &Network{
		Graph:    graph.New(),
		Params:   p,
		Scenario: scen,
		scenario: scen,
		rng:      rng,
	}
	g := n.Graph

	routerDelay := func() time.Duration {
		if scen == LAN {
			return time.Microsecond
		}
		// WAN: uniform in [1ms, 10ms].
		return time.Millisecond + time.Duration(rng.Int63n(int64(9*time.Millisecond)))
	}

	// Transit domains: each a ring of TransitPerDomain routers plus one
	// random chord per router (for TransitPerDomain >= 4), the classic
	// gt-itm flavor of a well-connected core.
	domains := make([][]graph.NodeID, p.TransitDomains)
	for d := range domains {
		domains[d] = make([]graph.NodeID, p.TransitPerDomain)
		for i := range domains[d] {
			id := g.AddRouter(fmt.Sprintf("t%d.%d", d, i))
			domains[d][i] = id
			n.TransitRouters = append(n.TransitRouters, id)
		}
		m := p.TransitPerDomain
		if m > 1 {
			for i := 0; i < m; i++ {
				g.Connect(domains[d][i], domains[d][(i+1)%m], TransitLinkCapacity, routerDelay())
			}
		}
		if m >= 4 {
			for i := 0; i < m; i++ {
				j := (i + 2 + rng.Intn(m-3)) % m
				if !connected(g, domains[d][i], domains[d][j]) {
					g.Connect(domains[d][i], domains[d][j], TransitLinkCapacity, routerDelay())
				}
			}
		}
	}
	// Inter-domain ring through random representatives, plus one random
	// extra inter-domain link per domain for path diversity.
	if p.TransitDomains > 1 {
		for d := 0; d < p.TransitDomains; d++ {
			next := (d + 1) % p.TransitDomains
			a := domains[d][rng.Intn(p.TransitPerDomain)]
			b := domains[next][rng.Intn(p.TransitPerDomain)]
			if !connected(g, a, b) {
				g.Connect(a, b, TransitLinkCapacity, routerDelay())
			}
		}
		for d := 0; d < p.TransitDomains; d++ {
			other := rng.Intn(p.TransitDomains)
			if other == d {
				continue
			}
			a := domains[d][rng.Intn(p.TransitPerDomain)]
			b := domains[other][rng.Intn(p.TransitPerDomain)]
			if !connected(g, a, b) {
				g.Connect(a, b, TransitLinkCapacity, routerDelay())
			}
		}
	}

	// Stub domains: rings (lines for tiny sizes) of stub routers; router 0
	// uplinks to its transit router. Stub domains are spread round-robin
	// over all transit routers.
	transitCount := len(n.TransitRouters)
	for sd := 0; sd < p.StubDomains; sd++ {
		attach := n.TransitRouters[sd%transitCount]
		stub := make([]graph.NodeID, p.RoutersPerStub)
		for i := range stub {
			id := g.AddRouter(fmt.Sprintf("s%d.%d", sd, i))
			stub[i] = id
			n.StubRouters = append(n.StubRouters, id)
		}
		m := p.RoutersPerStub
		switch {
		case m == 2:
			g.Connect(stub[0], stub[1], StubLinkCapacity, routerDelay())
		case m > 2:
			for i := 0; i < m; i++ {
				g.Connect(stub[i], stub[(i+1)%m], StubLinkCapacity, routerDelay())
			}
		}
		// Transit routers' links run at the transit tier.
		g.Connect(stub[0], attach, TransitLinkCapacity, routerDelay())
	}

	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("topology: generated graph invalid: %w", err)
	}
	return n, nil
}

func connected(g *graph.Graph, a, b graph.NodeID) bool {
	for _, l := range g.Out(a) {
		if g.Link(l).To == b {
			return true
		}
	}
	return false
}

// AddHosts attaches count hosts to stub routers chosen uniformly at random
// (the paper attaches hosts to stub routers only) and returns their IDs.
func (n *Network) AddHosts(count int) []graph.NodeID {
	delay := time.Microsecond // host links are 1 µs in both scenarios
	out := make([]graph.NodeID, count)
	for i := range out {
		r := n.StubRouters[n.rng.Intn(len(n.StubRouters))]
		h := n.Graph.AddHost(fmt.Sprintf("h%d", len(n.Hosts)))
		n.Graph.Connect(h, r, HostLinkCapacity, delay)
		n.Hosts = append(n.Hosts, h)
		out[i] = h
	}
	return out
}

// RandomHostPair draws a distinct source/destination host pair uniformly at
// random, the paper's session placement policy.
func (n *Network) RandomHostPair() (src, dst graph.NodeID) {
	if len(n.Hosts) < 2 {
		panic("topology: need at least two hosts")
	}
	src = n.Hosts[n.rng.Intn(len(n.Hosts))]
	for {
		dst = n.Hosts[n.rng.Intn(len(n.Hosts))]
		if dst != src {
			return src, dst
		}
	}
}

// Rand exposes the network's deterministic RNG so callers stay on a single
// seed stream.
func (n *Network) Rand() *rand.Rand { return n.rng }

// Topology returns the underlying graph.
func (n *Network) Topology() *graph.Graph { return n.Graph }

// Hosted is the surface shared by every generated topology — transit-stub
// (*Network) and internet-scale (*Internet) alike: a graph, deterministic
// host attachment, and a single seeded RNG stream for session placement.
// Experiment drivers and the public builder accept any Hosted.
type Hosted interface {
	Topology() *graph.Graph
	AddHosts(count int) []graph.NodeID
	RandomHostPair() (src, dst graph.NodeID)
	Rand() *rand.Rand
}

// Hierarchical is implemented by topologies that expose per-node hierarchy
// labels (coarse to fine) for graph.PartitionHierarchy. Generated internet
// topologies implement it; transit-stub ones do not.
type Hierarchical interface {
	Hierarchy() [][]int32
}
