package topology

import (
	"testing"
	"time"

	"bneck/internal/graph"
)

func TestSizesMatchPaper(t *testing.T) {
	cases := []struct {
		p    Params
		want int
	}{
		{Small, 110},
		{Medium, 1100},
		{Big, 11000},
	}
	for _, c := range cases {
		if got := c.p.Routers(); got != c.want {
			t.Errorf("%s.Routers() = %d, want %d", c.p.Name, got, c.want)
		}
	}
}

func TestGenerateSmall(t *testing.T) {
	n, err := Generate(Small, LAN, 1)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	if got := len(n.TransitRouters) + len(n.StubRouters); got != 110 {
		t.Fatalf("router count = %d", got)
	}
	if err := n.Graph.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestGenerateMediumConnected(t *testing.T) {
	n, err := Generate(Medium, LAN, 2)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	hosts := n.AddHosts(50)
	res := graph.NewResolver(n.Graph, 64)
	// Every pair of a sample must be connected.
	for i := 0; i < 20; i++ {
		src, dst := n.RandomHostPair()
		p, err := res.HostPath(src, dst)
		if err != nil {
			t.Fatalf("HostPath(%d,%d): %v", src, dst, err)
		}
		if err := graph.ValidatePath(n.Graph, p); err != nil {
			t.Fatalf("ValidatePath: %v", err)
		}
	}
	_ = hosts
}

func TestCapacityTiers(t *testing.T) {
	n, err := Generate(Small, LAN, 3)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	n.AddHosts(10)
	g := n.Graph
	transit := make(map[graph.NodeID]bool)
	for _, r := range n.TransitRouters {
		transit[r] = true
	}
	for i := 0; i < g.NumLinks(); i++ {
		l := g.Link(graph.LinkID(i))
		fromKind := g.Node(l.From).Kind
		toKind := g.Node(l.To).Kind
		switch {
		case fromKind == graph.Host || toKind == graph.Host:
			if !l.Capacity.Equal(HostLinkCapacity) {
				t.Fatalf("host link %d capacity %v", i, l.Capacity)
			}
		case transit[l.From] || transit[l.To]:
			if !l.Capacity.Equal(TransitLinkCapacity) {
				t.Fatalf("transit link %d capacity %v", i, l.Capacity)
			}
		default:
			if !l.Capacity.Equal(StubLinkCapacity) {
				t.Fatalf("stub link %d capacity %v", i, l.Capacity)
			}
		}
	}
}

func TestPropagationModels(t *testing.T) {
	lan, err := Generate(Small, LAN, 4)
	if err != nil {
		t.Fatalf("Generate LAN: %v", err)
	}
	for i := 0; i < lan.Graph.NumLinks(); i++ {
		if d := lan.Graph.Link(graph.LinkID(i)).Propagation; d != time.Microsecond {
			t.Fatalf("LAN link %d propagation %v", i, d)
		}
	}
	wan, err := Generate(Small, WAN, 4)
	if err != nil {
		t.Fatalf("Generate WAN: %v", err)
	}
	wan.AddHosts(5)
	g := wan.Graph
	sawLong := false
	for i := 0; i < g.NumLinks(); i++ {
		l := g.Link(graph.LinkID(i))
		isHostLink := g.Node(l.From).Kind == graph.Host || g.Node(l.To).Kind == graph.Host
		if isHostLink {
			if l.Propagation != time.Microsecond {
				t.Fatalf("WAN host link %d propagation %v", i, l.Propagation)
			}
			continue
		}
		if l.Propagation < time.Millisecond || l.Propagation > 10*time.Millisecond {
			t.Fatalf("WAN router link %d propagation %v outside [1ms,10ms]", i, l.Propagation)
		}
		if l.Propagation > 5*time.Millisecond {
			sawLong = true
		}
	}
	if !sawLong {
		t.Fatalf("WAN delays suspiciously uniform")
	}
}

func TestDeterminism(t *testing.T) {
	a, err := Generate(Small, WAN, 99)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(Small, WAN, 99)
	if err != nil {
		t.Fatal(err)
	}
	if a.Graph.NumLinks() != b.Graph.NumLinks() || a.Graph.NumNodes() != b.Graph.NumNodes() {
		t.Fatalf("structure differs across identical seeds")
	}
	for i := 0; i < a.Graph.NumLinks(); i++ {
		la, lb := a.Graph.Link(graph.LinkID(i)), b.Graph.Link(graph.LinkID(i))
		if la.From != lb.From || la.To != lb.To || la.Propagation != lb.Propagation {
			t.Fatalf("link %d differs across identical seeds", i)
		}
	}
	ha := a.AddHosts(20)
	hb := b.AddHosts(20)
	for i := range ha {
		if a.Graph.HostRouter(ha[i]) != b.Graph.HostRouter(hb[i]) {
			t.Fatalf("host attachment differs across identical seeds")
		}
	}
}

func TestHostsAttachToStubRouters(t *testing.T) {
	n, err := Generate(Small, LAN, 5)
	if err != nil {
		t.Fatal(err)
	}
	stub := make(map[graph.NodeID]bool)
	for _, r := range n.StubRouters {
		stub[r] = true
	}
	for _, h := range n.AddHosts(30) {
		if !stub[n.Graph.HostRouter(h)] {
			t.Fatalf("host %d attached to non-stub router", h)
		}
	}
}

func TestInvalidParams(t *testing.T) {
	if _, err := Generate(Params{}, LAN, 1); err == nil {
		t.Fatalf("expected error for zero params")
	}
}

func TestBigGenerates(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	n, err := Generate(Big, LAN, 6)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(n.TransitRouters) + len(n.StubRouters); got != 11000 {
		t.Fatalf("router count = %d", got)
	}
	n.AddHosts(100)
	res := graph.NewResolver(n.Graph, 16)
	for i := 0; i < 10; i++ {
		src, dst := n.RandomHostPair()
		if _, err := res.HostPath(src, dst); err != nil {
			t.Fatalf("HostPath: %v", err)
		}
	}
}
