package topology

import (
	"fmt"
	"math/rand"
	"time"

	"bneck/internal/graph"
	"bneck/internal/rate"
)

// Internet-scale topologies.
//
// The paper's transit-stub generator (topology.go) tops out at shapes whose
// structure is invisible to the partitioner: two tiers, uniform delays per
// scenario, stub domains scattered round-robin. Real internet graphs are
// sparser and far more hierarchical — a handful of continental regions, each
// with a dense core, metro aggregation rings under the core, and a broad
// fringe of access/edge routers whose attachment follows a rich-get-richer
// (power-law) rule. That hierarchy is exactly what hierarchical partitioning
// (graph.PartitionHierarchy) cuts along, so the generator labels every node
// with its region and metro as it emits it.
//
// Generation streams: StreamInternet pushes routers and links into an
// InternetSink one at a time, in a fixed hierarchical order, keeping only
// O(routers-per-region) working state (preferential-attachment endpoint
// lists for the current region/metro, a tiny dedup set for core chords).
// A 10k-router graph is built without any intermediate adjacency
// materialization beyond the graph the sink itself chooses to keep.

// Tier classifies a generated internet router.
type Tier uint8

const (
	// TierCore routers form a region's densely-meshed backbone.
	TierCore Tier = iota
	// TierMetro routers aggregate a metro ring under two core uplinks.
	TierMetro
	// TierEdge routers hang off metro rings; hosts attach here.
	TierEdge
)

func (t Tier) String() string {
	switch t {
	case TierCore:
		return "core"
	case TierMetro:
		return "metro"
	default:
		return "edge"
	}
}

// InternetParams sizes a hierarchical internet topology: Regions continental
// regions, each with CorePerRegion backbone routers, MetrosPerRegion metro
// rings of RoutersPerMetro routers, and EdgePerMetro access routers per
// metro attached by preferential attachment (the power-law fringe).
type InternetParams struct {
	Name            string
	Regions         int
	CorePerRegion   int
	MetrosPerRegion int
	RoutersPerMetro int
	EdgePerMetro    int
}

// Routers returns the total router count the parameters produce.
func (p InternetParams) Routers() int {
	return p.Regions * (p.CorePerRegion + p.MetrosPerRegion*(p.RoutersPerMetro+p.EdgePerMetro))
}

// The benchmark ladder's three rungs (BENCH_PR8.json): paper-sized, metro
// scale, and the 10k-router internet rung of the north star.
var (
	// InternetPaper matches the paper's Small scale: 40 routers.
	InternetPaper = InternetParams{Name: "InternetPaper", Regions: 2, CorePerRegion: 4, MetrosPerRegion: 2, RoutersPerMetro: 4, EdgePerMetro: 4}
	// InternetMetro is the ~1k-router middle rung: 992 routers.
	InternetMetro = InternetParams{Name: "InternetMetro", Regions: 4, CorePerRegion: 8, MetrosPerRegion: 6, RoutersPerMetro: 8, EdgePerMetro: 32}
	// InternetGlobal is the ~10k-router internet rung: 10,080 routers.
	InternetGlobal = InternetParams{Name: "InternetGlobal", Regions: 8, CorePerRegion: 12, MetrosPerRegion: 12, RoutersPerMetro: 12, EdgePerMetro: 92}
)

// Internet capacity tiers: long-haul core links are two orders of magnitude
// fatter than the paper's 500 Mbps transit tier; hosts keep HostLinkCapacity.
var (
	CoreLinkCapacity  = rate.Mbps(100_000) // 100 Gbps backbone
	MetroLinkCapacity = rate.Mbps(10_000)  // 10 Gbps metro aggregation
	EdgeLinkCapacity  = rate.Mbps(1_000)   // 1 Gbps access
)

// InternetSink receives a streamed topology element by element. AddRouter
// must return the dense node ID the sink assigned; Connect refers back to
// those IDs. region and metro are the hierarchy labels partitioning cuts
// along: region is dense in [0, Regions), metro is globally unique across
// the topology (core routers share a per-region pseudo-metro).
type InternetSink interface {
	AddRouter(name string, tier Tier, region, metro int32) graph.NodeID
	Connect(a, b graph.NodeID, capacity rate.Rate, propagation time.Duration)
}

// StreamInternet generates the topology deterministically from the seed,
// pushing every router and link into sink in a fixed hierarchical order:
// region by region — core ring, core chords — then metro by metro — metro
// ring, core uplinks, edge attachments — then the inter-region backbone.
// Working state stays proportional to one region, never the whole graph.
func StreamInternet(p InternetParams, seed int64, sink InternetSink) error {
	if p.Regions < 1 || p.CorePerRegion < 1 || p.MetrosPerRegion < 1 || p.RoutersPerMetro < 1 || p.EdgePerMetro < 1 {
		return fmt.Errorf("topology: invalid internet params %+v", p)
	}
	rng := rand.New(rand.NewSource(seed))

	// band draws a propagation delay uniformly from [lo, hi).
	band := func(lo, hi time.Duration) time.Duration {
		if hi <= lo {
			return lo
		}
		return lo + time.Duration(rng.Int63n(int64(hi-lo)))
	}
	// interRegionDelay derives the long-haul delay from geography: regions
	// sit evenly on a circle, and the delay grows with arc distance from a
	// 5 ms floor to ~60 ms antipodal, plus up to 10% jitter.
	interRegionDelay := func(r1, r2 int) time.Duration {
		d := r1 - r2
		if d < 0 {
			d = -d
		}
		if d > p.Regions-d {
			d = p.Regions - d
		}
		half := p.Regions / 2
		if half < 1 {
			half = 1
		}
		base := 5*time.Millisecond + time.Duration(int64(d)*int64(55*time.Millisecond)/int64(half))
		return base + time.Duration(rng.Int63n(int64(base/10)+1))
	}

	// paPick samples an endpoint list (node IDs repeated once per attachment,
	// the Barabási–Albert trick) until it draws a node other than avoid.
	paPick := func(pa []graph.NodeID, avoid graph.NodeID) graph.NodeID {
		for {
			c := pa[rng.Intn(len(pa))]
			if c != avoid {
				return c
			}
		}
	}

	metroSeq := int32(0) // globally-unique metro label allocator

	// gateways[r] holds region r's core routers — the only cross-region
	// state kept, O(Regions·CorePerRegion). corePA mirrors it weighted by
	// degree so inter-region links and metro uplinks both land on the
	// better-connected cores (hub formation at every level).
	gateways := make([][]graph.NodeID, p.Regions)
	corePA := make([][]graph.NodeID, p.Regions)

	for r := 0; r < p.Regions; r++ {
		// Core ring plus one preferential chord per router.
		m := p.CorePerRegion
		region := int32(r)
		coreMetro := metroSeq // per-region pseudo-metro for the core tier
		metroSeq++
		core := make([]graph.NodeID, m)
		for i := range core {
			core[i] = sink.AddRouter(fmt.Sprintf("c%d.%d", r, i), TierCore, region, coreMetro)
		}
		pa := make([]graph.NodeID, 0, 4*m)
		linked := make(map[[2]graph.NodeID]bool, 2*m)
		connect := func(a, b graph.NodeID, cap rate.Rate, d time.Duration) bool {
			k := [2]graph.NodeID{a, b}
			if a > b {
				k = [2]graph.NodeID{b, a}
			}
			if linked[k] {
				return false
			}
			linked[k] = true
			sink.Connect(a, b, cap, d)
			pa = append(pa, a, b)
			return true
		}
		if m > 1 {
			for i := 0; i < m; i++ {
				connect(core[i], core[(i+1)%m], CoreLinkCapacity, band(time.Millisecond, 4*time.Millisecond))
			}
		} else {
			pa = append(pa, core[0])
		}
		if m >= 4 {
			for i := 0; i < m; i++ {
				if t := paPick(pa, core[i]); t != core[i] {
					connect(core[i], t, CoreLinkCapacity, band(time.Millisecond, 4*time.Millisecond))
				}
			}
		}
		gateways[r] = core
		corePA[r] = pa

		// Metros: ring of RoutersPerMetro routers, two core uplinks, then the
		// power-law edge fringe. All working state dies with the metro.
		for mi := 0; mi < p.MetrosPerRegion; mi++ {
			metro := metroSeq
			metroSeq++
			ring := make([]graph.NodeID, p.RoutersPerMetro)
			for i := range ring {
				ring[i] = sink.AddRouter(fmt.Sprintf("m%d.%d.%d", r, mi, i), TierMetro, region, metro)
			}
			mpa := make([]graph.NodeID, 0, 2*p.RoutersPerMetro+2*p.EdgePerMetro)
			mpa = append(mpa, ring...)
			switch n := p.RoutersPerMetro; {
			case n == 2:
				sink.Connect(ring[0], ring[1], MetroLinkCapacity, band(50*time.Microsecond, 200*time.Microsecond))
				mpa = append(mpa, ring[0], ring[1])
			case n > 2:
				for i := 0; i < n; i++ {
					j := (i + 1) % n
					sink.Connect(ring[i], ring[j], MetroLinkCapacity, band(50*time.Microsecond, 200*time.Microsecond))
					mpa = append(mpa, ring[i], ring[j])
				}
			}
			// Two uplinks into the region core, preferentially to hub cores,
			// from opposite sides of the ring for path diversity.
			up1 := corePA[r][rng.Intn(len(corePA[r]))]
			sink.Connect(ring[0], up1, MetroLinkCapacity, band(200*time.Microsecond, time.Millisecond))
			corePA[r] = append(corePA[r], up1)
			if p.CorePerRegion > 1 {
				up2 := paPick(corePA[r], up1)
				sink.Connect(ring[len(ring)/2], up2, MetroLinkCapacity, band(200*time.Microsecond, time.Millisecond))
				corePA[r] = append(corePA[r], up2)
			}
			// Edge fringe: each access router attaches to a preferentially
			// chosen metro router (rich-get-richer: popular aggregation
			// routers keep gaining edges, the power-law degree tail), with a
			// 25% chance of a second uplink to a different metro router.
			for e := 0; e < p.EdgePerMetro; e++ {
				id := sink.AddRouter(fmt.Sprintf("e%d.%d.%d", r, mi, e), TierEdge, region, metro)
				a := mpa[rng.Intn(len(mpa))]
				sink.Connect(id, a, EdgeLinkCapacity, band(20*time.Microsecond, 100*time.Microsecond))
				mpa = append(mpa, a)
				if p.RoutersPerMetro > 1 && rng.Intn(4) == 0 {
					b := paPick(mpa, a)
					sink.Connect(id, b, EdgeLinkCapacity, band(20*time.Microsecond, 100*time.Microsecond))
					mpa = append(mpa, b)
				}
			}
		}
	}

	// Inter-region backbone: a ring through preferentially-chosen gateway
	// cores plus one extra chord per region, delays derived from the circle
	// geometry. Deduped by node pair so two-region rings stay simple.
	if p.Regions > 1 {
		interLinked := make(map[[2]graph.NodeID]bool, 2*p.Regions)
		interConnect := func(r1, r2 int) {
			a := corePA[r1][rng.Intn(len(corePA[r1]))]
			b := corePA[r2][rng.Intn(len(corePA[r2]))]
			k := [2]graph.NodeID{a, b}
			if a > b {
				k = [2]graph.NodeID{b, a}
			}
			if interLinked[k] {
				return
			}
			interLinked[k] = true
			sink.Connect(a, b, CoreLinkCapacity, interRegionDelay(r1, r2))
			corePA[r1] = append(corePA[r1], a)
			corePA[r2] = append(corePA[r2], b)
		}
		for r := 0; r < p.Regions; r++ {
			interConnect(r, (r+1)%p.Regions)
		}
		for r := 0; r < p.Regions; r++ {
			other := rng.Intn(p.Regions)
			if other != r {
				interConnect(r, other)
			}
		}
	}
	return nil
}

// Internet is a generated internet-scale topology plus the host bookkeeping
// and per-node hierarchy labels the hierarchical partitioner consumes.
type Internet struct {
	Graph  *graph.Graph
	Params InternetParams
	Core   []graph.NodeID
	Metro  []graph.NodeID
	Edge   []graph.NodeID
	Hosts  []graph.NodeID

	region []int32 // per node, dense by NodeID
	metro  []int32 // per node, dense by NodeID
	rng    *rand.Rand
}

// internetBuild adapts a *graph.Graph as a StreamInternet sink, recording
// tier membership and hierarchy labels as elements arrive.
type internetBuild struct {
	n *Internet
}

func (b internetBuild) AddRouter(name string, tier Tier, region, metro int32) graph.NodeID {
	id := b.n.Graph.AddRouter(name)
	switch tier {
	case TierCore:
		b.n.Core = append(b.n.Core, id)
	case TierMetro:
		b.n.Metro = append(b.n.Metro, id)
	default:
		b.n.Edge = append(b.n.Edge, id)
	}
	b.n.region = append(b.n.region, region)
	b.n.metro = append(b.n.metro, metro)
	return id
}

func (b internetBuild) Connect(a, c graph.NodeID, cap rate.Rate, d time.Duration) {
	b.n.Graph.Connect(a, c, cap, d)
}

// GenerateInternet builds an internet-scale topology deterministically from
// the seed by streaming StreamInternet into a fresh graph.
func GenerateInternet(p InternetParams, seed int64) (*Internet, error) {
	n := &Internet{
		Graph:  graph.New(),
		Params: p,
		rng:    rand.New(rand.NewSource(seed ^ 0x1beda11)),
	}
	if err := StreamInternet(p, seed, internetBuild{n}); err != nil {
		return nil, err
	}
	if err := n.Graph.Validate(); err != nil {
		return nil, fmt.Errorf("topology: generated internet graph invalid: %w", err)
	}
	return n, nil
}

// Topology returns the underlying graph.
func (n *Internet) Topology() *graph.Graph { return n.Graph }

// AddHosts attaches count hosts to edge routers chosen uniformly at random
// and returns their IDs. A host inherits its router's hierarchy labels, so
// host links are never cut by the hierarchical partitioner.
func (n *Internet) AddHosts(count int) []graph.NodeID {
	delay := time.Microsecond
	out := make([]graph.NodeID, count)
	for i := range out {
		r := n.Edge[n.rng.Intn(len(n.Edge))]
		h := n.Graph.AddHost(fmt.Sprintf("h%d", len(n.Hosts)))
		n.Graph.Connect(h, r, HostLinkCapacity, delay)
		n.region = append(n.region, n.region[r])
		n.metro = append(n.metro, n.metro[r])
		n.Hosts = append(n.Hosts, h)
		out[i] = h
	}
	return out
}

// RandomHostPair draws a distinct source/destination host pair uniformly at
// random.
func (n *Internet) RandomHostPair() (src, dst graph.NodeID) {
	if len(n.Hosts) < 2 {
		panic("topology: need at least two hosts")
	}
	src = n.Hosts[n.rng.Intn(len(n.Hosts))]
	for {
		dst = n.Hosts[n.rng.Intn(len(n.Hosts))]
		if dst != src {
			return src, dst
		}
	}
}

// Rand exposes the topology's deterministic RNG so callers stay on a single
// seed stream.
func (n *Internet) Rand() *rand.Rand { return n.rng }

// Hierarchy returns the per-node label levels, coarse to fine — level 0 is
// the region, level 1 the metro — densely indexed by NodeID and covering
// every host added so far. The slices are live views: AddHosts extends them,
// so consumers should call Hierarchy again after topology growth rather
// than retaining old slices.
func (n *Internet) Hierarchy() [][]int32 {
	return [][]int32{n.region, n.metro}
}
