package topology

import (
	"fmt"
	"hash/fnv"
	"testing"
	"time"

	"bneck/internal/graph"
	"bneck/internal/rate"
)

// hashInternet folds every structural byte of a generated topology — nodes,
// names, links, capacities, propagation delays, hierarchy labels — into one
// digest, the "byte-identical" witness the determinism tests compare.
func hashInternet(n *Internet) uint64 {
	h := fnv.New64a()
	g := n.Graph
	for i := 0; i < g.NumNodes(); i++ {
		nd := g.Node(graph.NodeID(i))
		fmt.Fprintf(h, "n%d|%d|%s|r%d|m%d\n", nd.ID, nd.Kind, nd.Name, n.region[i], n.metro[i])
	}
	for i := 0; i < g.NumLinks(); i++ {
		l := g.Link(graph.LinkID(i))
		fmt.Fprintf(h, "l%d|%d>%d|%v|%v\n", l.ID, l.From, l.To, l.Capacity, l.Propagation)
	}
	return h.Sum64()
}

func TestInternetPresetSizes(t *testing.T) {
	for _, p := range []InternetParams{InternetPaper, InternetMetro, InternetGlobal} {
		want := p.Routers()
		n, err := GenerateInternet(p, 1)
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		got := len(n.Core) + len(n.Metro) + len(n.Edge)
		if got != want || n.Graph.NumNodes() != want {
			t.Fatalf("%s: %d routers generated, Routers() = %d", p.Name, got, want)
		}
		t.Logf("%s: %d routers (%d core, %d metro, %d edge), %d directed links",
			p.Name, got, len(n.Core), len(n.Metro), len(n.Edge), n.Graph.NumLinks())
	}
	if InternetPaper.Routers() != 40 {
		t.Fatalf("InternetPaper.Routers() = %d, want 40", InternetPaper.Routers())
	}
	if InternetGlobal.Routers() < 10000 {
		t.Fatalf("InternetGlobal.Routers() = %d, want ≥ 10000", InternetGlobal.Routers())
	}
}

func TestInternetDeterminism(t *testing.T) {
	a, err := GenerateInternet(InternetMetro, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateInternet(InternetMetro, 42)
	if err != nil {
		t.Fatal(err)
	}
	if hashInternet(a) != hashInternet(b) {
		t.Fatal("same seed produced different topologies")
	}
	c, err := GenerateInternet(InternetMetro, 43)
	if err != nil {
		t.Fatal(err)
	}
	if hashInternet(a) == hashInternet(c) {
		t.Fatal("different seeds produced identical topologies")
	}
	// Host attachment stays on the same stream: regenerate and re-attach.
	a.AddHosts(64)
	b.AddHosts(64)
	if hashInternet(a) != hashInternet(b) {
		t.Fatal("same seed produced different host attachments")
	}
}

// countSink counts streamed elements without keeping any graph — the
// streaming contract: a consumer that only needs aggregates never pays for
// an adjacency structure.
type countSink struct {
	routers, links int
	perTier        [3]int
}

func (c *countSink) AddRouter(name string, tier Tier, region, metro int32) graph.NodeID {
	id := graph.NodeID(c.routers)
	c.routers++
	c.perTier[tier]++
	return id
}

func (c *countSink) Connect(a, b graph.NodeID, cap rate.Rate, d time.Duration) { c.links++ }

func TestInternetStreamingMatchesGraph(t *testing.T) {
	var cs countSink
	if err := StreamInternet(InternetMetro, 7, &cs); err != nil {
		t.Fatal(err)
	}
	n, err := GenerateInternet(InternetMetro, 7)
	if err != nil {
		t.Fatal(err)
	}
	if cs.routers != n.Graph.NumNodes() {
		t.Fatalf("streamed %d routers, graph has %d nodes", cs.routers, n.Graph.NumNodes())
	}
	// Graph.Connect adds both directions; the stream emits each link once.
	if 2*cs.links != n.Graph.NumLinks() {
		t.Fatalf("streamed %d links, graph has %d directed links", cs.links, n.Graph.NumLinks())
	}
	if cs.perTier[TierCore] != len(n.Core) || cs.perTier[TierMetro] != len(n.Metro) || cs.perTier[TierEdge] != len(n.Edge) {
		t.Fatalf("tier counts diverge: stream %v, graph %d/%d/%d",
			cs.perTier, len(n.Core), len(n.Metro), len(n.Edge))
	}
}

func TestInternetHierarchyLabels(t *testing.T) {
	n, err := GenerateInternet(InternetPaper, 3)
	if err != nil {
		t.Fatal(err)
	}
	n.AddHosts(20)
	levels := n.Hierarchy()
	if len(levels) != 2 {
		t.Fatalf("Hierarchy() returned %d levels, want 2", len(levels))
	}
	g := n.Graph
	if len(levels[0]) != g.NumNodes() || len(levels[1]) != g.NumNodes() {
		t.Fatalf("labels not dense: %d/%d labels for %d nodes", len(levels[0]), len(levels[1]), g.NumNodes())
	}
	region, metro := levels[0], levels[1]
	// Regions are dense in [0, Regions); a finer label never spans regions.
	metroRegion := map[int32]int32{}
	for i := 0; i < g.NumNodes(); i++ {
		if region[i] < 0 || int(region[i]) >= InternetPaper.Regions {
			t.Fatalf("node %d region %d out of range", i, region[i])
		}
		if r, ok := metroRegion[metro[i]]; ok && r != region[i] {
			t.Fatalf("metro %d spans regions %d and %d", metro[i], r, region[i])
		}
		metroRegion[metro[i]] = region[i]
	}
	// A host inherits its router's labels, so host links are never cut.
	for _, h := range n.Hosts {
		r := g.HostRouter(h)
		if region[h] != region[r] || metro[h] != metro[r] {
			t.Fatalf("host %d labels (%d,%d) differ from router %d (%d,%d)",
				h, region[h], metro[h], r, region[r], metro[r])
		}
	}
}

func TestInternetLatencyAndCapacityBands(t *testing.T) {
	n, err := GenerateInternet(InternetMetro, 11)
	if err != nil {
		t.Fatal(err)
	}
	g := n.Graph
	region := n.Hierarchy()[0]
	tier := make(map[graph.NodeID]Tier, g.NumNodes())
	for _, id := range n.Core {
		tier[id] = TierCore
	}
	for _, id := range n.Metro {
		tier[id] = TierMetro
	}
	for _, id := range n.Edge {
		tier[id] = TierEdge
	}
	for i := 0; i < g.NumLinks(); i++ {
		l := g.Link(graph.LinkID(i))
		ta, tb := tier[l.From], tier[l.To]
		switch {
		case ta == TierCore && tb == TierCore:
			if !l.Capacity.Equal(CoreLinkCapacity) {
				t.Fatalf("core link %d capacity %v", i, l.Capacity)
			}
			if region[l.From] != region[l.To] {
				// Geography: inter-region delays start at the 5 ms floor.
				if l.Propagation < 5*time.Millisecond {
					t.Fatalf("inter-region link %d delay %v < 5ms", i, l.Propagation)
				}
			} else if l.Propagation < time.Millisecond || l.Propagation >= 4*time.Millisecond {
				t.Fatalf("intra-region core link %d delay %v outside [1ms,4ms)", i, l.Propagation)
			}
		case ta == TierEdge || tb == TierEdge:
			if !l.Capacity.Equal(EdgeLinkCapacity) {
				t.Fatalf("edge link %d capacity %v", i, l.Capacity)
			}
			if l.Propagation < 20*time.Microsecond || l.Propagation >= 100*time.Microsecond {
				t.Fatalf("edge link %d delay %v outside [20µs,100µs)", i, l.Propagation)
			}
		default: // metro ring or metro→core uplink
			if !l.Capacity.Equal(MetroLinkCapacity) {
				t.Fatalf("metro link %d capacity %v", i, l.Capacity)
			}
			if l.Propagation < 50*time.Microsecond || l.Propagation >= time.Millisecond {
				t.Fatalf("metro link %d delay %v outside [50µs,1ms)", i, l.Propagation)
			}
		}
	}
	// Inter-region links land only between core routers: every cross-region
	// link must have core endpoints on both sides (the hierarchy the
	// partitioner cuts along).
	for i := 0; i < g.NumLinks(); i++ {
		l := g.Link(graph.LinkID(i))
		if region[l.From] != region[l.To] && (tier[l.From] != TierCore || tier[l.To] != TierCore) {
			t.Fatalf("cross-region link %d not core-core (%v-%v)", i, tier[l.From], tier[l.To])
		}
	}
}

func TestInternetPowerLawFringe(t *testing.T) {
	n, err := GenerateInternet(InternetMetro, 5)
	if err != nil {
		t.Fatal(err)
	}
	g := n.Graph
	// Preferential attachment concentrates edge uplinks: the most popular
	// metro router must carry several times the median metro degree.
	max, sum := 0, 0
	for _, id := range n.Metro {
		d := len(g.Out(id))
		sum += d
		if d > max {
			max = d
		}
	}
	mean := sum / len(n.Metro)
	if max < 2*mean {
		t.Fatalf("no heavy tail: max metro degree %d, mean %d", max, mean)
	}
	t.Logf("metro degree: max %d, mean %d over %d routers", max, mean, len(n.Metro))
}
